"""The remaining noelle-* tools and the pipeline driver (Figure 1).

* ``noelle-prof-coverage``  -> :func:`prof_coverage`
* ``noelle-meta-prof-embed`` -> :func:`meta_prof_embed`
* ``noelle-meta-clean``      -> :func:`meta_clean`
* ``noelle-arch``            -> :func:`measure_architecture`
* ``noelle-load``            -> :func:`load`
* ``noelle-linker``          -> :func:`link`
* ``noelle-bin``             -> :class:`Binary` / :func:`make_binary`

:func:`helix_pipeline` strings them together exactly as the paper's
Figure 1 does for the HELIX custom tool.
"""

from __future__ import annotations

from ..core.architecture import ArchitectureDescription
from ..core.metadata import clean_noelle_metadata
from ..core.noelle import Noelle
from ..core.profiler import ProfileData, Profiler, embed_profile
from ..interp.interp import ExecutionResult
from ..ir import Module, link_modules, verify_module
from ..perf import STATS
from ..robust.diagnostics import EntryNotFoundError
from ..robust.passmanager import DEFAULT_DEADLINE_S, PassManager
from ..runtime.machine import ParallelMachine
from .meta_pdg_embed import embed_pdg, load_embedded_pdg
from .whole_ir import link_options_of


def prof_coverage(
    module: Module, training_args: list[object] | None = None
) -> ProfileData:
    """``noelle-prof-coverage``: run the instrumented program."""
    return Profiler(module).profile(args=training_args)


def meta_prof_embed(module: Module, profile: ProfileData) -> None:
    """``noelle-meta-prof-embed``: persist counts into the IR."""
    embed_profile(module, profile)


def meta_clean(module: Module) -> int:
    """``noelle-meta-clean``: strip all noelle.* metadata."""
    return clean_noelle_metadata(module)


def measure_architecture(
    num_cores: int = 12, smt: int = 2, numa: int = 1
) -> ArchitectureDescription:
    """``noelle-arch``: probe the (simulated) machine.

    On real hardware the tool runs ping-pong kernels between core pairs
    (via hwloc); here the machine *is* the model, so probing asks the
    model and records the answer per pair — keeping the description
    byte-for-byte consistent with what the runtime will charge.
    """
    arch = ArchitectureDescription(num_cores, smt, numa)
    for src in range(arch.num_physical_cores):
        for dst in range(src + 1, arch.num_physical_cores):
            arch.set_latency(src, dst, arch.latency(src, dst))
            arch.set_bandwidth(src, dst, arch.bandwidth(src, dst))
    return arch


def load(
    module: Module,
    architecture: ArchitectureDescription | None = None,
    profile: ProfileData | None = None,
    minimum_hotness: float = 0.0,
) -> Noelle:
    """``noelle-load``: bring the layer up *without computing* anything.

    Abstractions materialize on first use; a PDG embedded by
    ``noelle-meta-pdg-embed`` is reused instead of recomputed.
    """
    noelle = Noelle(module, architecture, profile, minimum_hotness)
    embedded = load_embedded_pdg(module)
    if embedded is not None:
        noelle.adopt_pdg(embedded)
    else:
        from .. import cache

        if cache.enabled():
            # Hydrate PDG shards / engine plans from the artifact cache
            # and bind the facade so invalidation mirrors onto disk.
            cache.attach(noelle)
    return noelle


def link(modules: list[Module], name: str = "linked") -> Module:
    """``noelle-linker``: combine modules, preserving noelle metadata."""
    return link_modules(modules, name)


class Binary:
    """``noelle-bin``'s output: an executable program image.

    Runs on the simulated machine; the link options embedded by
    ``noelle-whole-IR`` select the runtime pieces (parallel dispatch).
    """

    def __init__(self, module: Module, num_cores: int | None = None,
                 architecture: ArchitectureDescription | None = None,
                 engine: str | None = None):
        verify_module(module)
        self.module = module
        self.num_cores = num_cores
        self.architecture = architecture
        #: Execution engine of the image ("compiled"/"reference"); None
        #: defers to the NOELLE_ENGINE environment variable.
        self.engine = engine
        self.link_options = link_options_of(module)

    def run(self, args: list[object] | None = None,
            entry: str = "main") -> ExecutionResult:
        fn = self.module.functions.get(entry)
        if fn is None or fn.is_declaration():
            raise EntryNotFoundError(
                entry,
                sorted(f.name for f in self.module.defined_functions()),
            )
        machine = ParallelMachine(
            self.module,
            architecture=self.architecture,
            num_cores=self.num_cores,
            engine=self.engine,
        )
        result = machine.run(entry, args)
        result.parallel_executions = list(machine.executions)
        return result


def make_binary(
    module: Module,
    num_cores: int | None = None,
    architecture: ArchitectureDescription | None = None,
    engine: str | None = None,
) -> Binary:
    """``noelle-bin``: finalize a module into a runnable image."""
    return Binary(module, num_cores, architecture, engine)


def helix_pipeline(
    sources: list[str],
    training_args: list[object] | None = None,
    num_cores: int = 12,
    minimum_hotness: float = 0.001,
    crash_dir: str | None = None,
    fault_plan="env",
    deadline_s: float | None = DEFAULT_DEADLINE_S,
    step_budget: int | None = None,
    pass_manager: PassManager | None = None,
) -> Module:
    """The Figure 1 compilation flow, end to end.

    whole-IR -> prof-coverage -> meta-prof-embed -> rm-lc-dependences ->
    meta-clean -> prof-coverage -> meta-prof-embed -> meta-pdg-embed ->
    arch -> load -> HELIX transformation -> (linker/bin are the caller's
    final step via :func:`make_binary`).

    Both transforms run as :class:`PassManager` transactions: a pass that
    crashes, times out, or fails verification is rolled back to its
    byte-identical pre-pass snapshot (a crash bundle lands in
    ``crash_dir``) and compilation continues with the surviving module —
    one bad optimization degrades, it does not abort.  Pass an explicit
    ``pass_manager`` to inspect results and bundles afterwards.
    """
    from .whole_ir import whole_ir_from_sources

    with STATS.timer("pipeline.helix"):
        module = whole_ir_from_sources(sources)
        with STATS.timer("pipeline.profile"):
            profile = prof_coverage(module, training_args)
        meta_prof_embed(module, profile)
        noelle = Noelle(module, profile=profile)
        manager = pass_manager
        if manager is None:
            manager = PassManager(
                noelle,
                crash_dir=crash_dir,
                deadline_s=deadline_s,
                step_budget=step_budget,
                fault_plan=fault_plan,
            )
        else:
            manager.rebind(noelle)
        manager.run_registered("rm-lc-dependences")
        meta_clean(module)
        with STATS.timer("pipeline.profile"):
            profile = prof_coverage(module, training_args)
        meta_prof_embed(module, profile)
        with STATS.timer("pipeline.pdg_embed"):
            embed_pdg(module)
        architecture = measure_architecture(num_cores)
        manager.rebind(load(module, architecture, profile, minimum_hotness))
        with STATS.timer("pipeline.transform"):
            manager.run_registered(
                "helix", num_cores=num_cores, minimum_hotness=minimum_hotness
            )
        verify_module(module)
    return module
