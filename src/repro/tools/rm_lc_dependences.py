"""``noelle-rm-lc-dependences`` — remove loop-carried data dependences.

Applies enabling transformations that erase loop-carried *memory*
dependences so the downstream parallelizers see cleaner aSCCDAGs.  The
workhorse implemented here is **in-loop scalar promotion**: an accumulator
kept in a memory cell (``*p += x`` style, or a global scalar updated every
iteration) creates a carried load/store cycle; when the cell provably has
no other readers or writers during the loop, the cell is promoted to a
register phi around the loop — after which the cycle is a *register*
reduction that RD recognizes and DOALL/HELIX parallelize.
"""

from __future__ import annotations

from ..analysis.aa import AliasResult
from ..analysis.loopinfo import LoopInfo, NaturalLoop
from ..core.noelle import Noelle
from .. import ir


def remove_loop_carried_dependences(noelle: Noelle) -> int:
    """Run the enabling transformations module-wide; returns rewrites."""
    promoted = 0
    for fn in list(noelle.module.defined_functions()):
        fn_promoted = 0
        changed = True
        while changed:
            changed = False
            info = LoopInfo(fn)
            for loop in info.loops():
                if _promote_scalar_cell(noelle, fn, loop):
                    fn_promoted += 1
                    changed = True
                    break  # loop info is stale
        if fn_promoted:
            # Promotion rewrote only this function: drop its shard and
            # loop info, keep the whole-module analyses warm.
            noelle.invalidate(fn)
            promoted += fn_promoted
    return promoted


def _promote_scalar_cell(noelle: Noelle, fn: ir.Function, loop: NaturalLoop) -> bool:
    """Find one promotable memory accumulator in ``loop`` and promote it."""
    aa = noelle.alias_analysis()
    loads: dict[int, list[ir.Load]] = {}
    stores: dict[int, list[ir.Store]] = {}
    pointers: dict[int, ir.Value] = {}
    calls: list[ir.Call] = []
    for inst in loop.instructions():
        if isinstance(inst, ir.Load):
            loads.setdefault(id(inst.pointer), []).append(inst)
            pointers[id(inst.pointer)] = inst.pointer
        elif isinstance(inst, ir.Store):
            stores.setdefault(id(inst.pointer), []).append(inst)
            pointers[id(inst.pointer)] = inst.pointer
        elif isinstance(inst, ir.Call):
            calls.append(inst)
    from ..analysis.aa import ModRefResult

    for ptr_id, pointer in pointers.items():
        if ptr_id not in loads or ptr_id not in stores:
            continue
        if isinstance(pointer, ir.Instruction) and loop.contains(pointer):
            continue  # the address itself varies inside the loop
        if not _cell_is_private(aa, pointer, pointers.values(), loop):
            continue
        # Calls in the loop must be unable to observe or clobber the cell.
        if any(
            aa.mod_ref(call, pointer) is not ModRefResult.NO_MOD_REF
            for call in calls
        ):
            continue
        if not _single_block_pattern(loads[ptr_id], stores[ptr_id], loop):
            continue
        _promote(fn, loop, pointer, loads[ptr_id], stores[ptr_id])
        return True
    return False


def _cell_is_private(aa, pointer: ir.Value, all_pointers, loop: NaturalLoop) -> bool:
    """No other pointer used in the loop may alias the cell."""
    for other in all_pointers:
        if other is pointer:
            continue
        if aa.alias(pointer, other) is not AliasResult.NO_ALIAS:
            return False
    return True


def _single_block_pattern(
    loads: list[ir.Load], stores: list[ir.Store], loop: NaturalLoop
) -> bool:
    """Canonical accumulator: one load, one later store, same block, and
    that block executes once per iteration (it dominates the latch —
    approximated here by being the header's unique in-loop successor or
    the header itself)."""
    if len(loads) != 1 or len(stores) != 1:
        return False
    load, store = loads[0], stores[0]
    if load.parent is not store.parent:
        return False
    block = load.parent
    if block.instructions.index(load) > block.instructions.index(store):
        return False
    from ..analysis.dominators import DominatorTree

    fn = block.parent
    dom = DominatorTree(fn)
    return all(
        dom.dominates_block(block, latch) for latch in loop.latches()
    )


def _promote(
    fn: ir.Function,
    loop: NaturalLoop,
    pointer: ir.Value,
    loads: list[ir.Load],
    stores: list[ir.Store],
) -> None:
    """Rewrite the cell into a register phi around the loop."""
    from ..core.loopbuilder import LoopBuilder

    load, store = loads[0], stores[0]
    lb = LoopBuilder(fn)
    pre = lb.ensure_pre_header(loop)
    exits = lb.ensure_dedicated_exits(loop)

    # Initial value: read the cell once before the loop.
    builder = ir.IRBuilder()
    builder.position_before(pre.terminator)
    initial = builder.load(pointer, "promoted.init")

    # The carried value: a phi in the header.
    phi = ir.Phi(load.type, "promoted")
    phi.parent = loop.header
    loop.header.instructions.insert(0, phi)
    fn.assign_name(phi)
    phi.add_incoming(initial, pre)
    for latch in loop.latches():
        phi.add_incoming(store.value, latch)

    load.replace_all_uses_with(phi)
    stored_value = store.value
    store_block = store.parent
    load.erase_from_parent()
    store.erase_from_parent()

    # Write the final value back once per exit.  The cell's content at an
    # exit is the last executed store: if the exit test runs *before* the
    # update (header exit), that is the phi; if the update dominates the
    # exiting branch (latch exit), it is the stored value.
    from ..analysis.dominators import DominatorTree

    dom = DominatorTree(fn)
    for exit_block in exits:
        exiting_preds = exit_block.predecessors()
        exit_builder = ir.IRBuilder()
        first = exit_block.first_non_phi()
        if first is not None:
            exit_builder.position_before(first)
        else:
            exit_builder.position_at_end(exit_block)
        use_stored = all(
            pred.terminator is not None
            and id(pred) in {id(b) for b in loop.blocks}
            and dom.dominates_block(store_block, pred)
            for pred in exiting_preds
        )
        exit_builder.store(stored_value if use_stored else phi, pointer)
    ir.verify_function(fn)
