"""``noelle-whole-IR`` — one IR file for the whole program.

Consumes MiniC source files (the clang stand-in) and/or textual IR files,
compiles them, and links everything into a single module, embedding the
compilation options as module metadata — exactly the paper's tool, which
merges all bitcode so whole-program analyses (the alias analyses powering
the PDG) can see everything.
"""

from __future__ import annotations

import os

from ..frontend.codegen import compile_source
from ..ir import Module, link_modules, parse_module, verify_module

LINK_OPTIONS_KEY = "noelle.link.options"


def whole_ir_from_sources(
    sources: list[str],
    link_options: list[str] | None = None,
    name: str = "whole-program",
) -> Module:
    """Compile + link source *texts* into one verified module."""
    modules = [
        compile_source(text, f"tu{index}") for index, text in enumerate(sources)
    ]
    return _combine(modules, link_options, name)


def whole_ir_from_files(
    paths: list[str],
    link_options: list[str] | None = None,
    name: str = "whole-program",
) -> Module:
    """Compile + link files (``.mc`` MiniC or ``.ir`` textual IR)."""
    modules: list[Module] = []
    for path in paths:
        with open(path) as handle:
            text = handle.read()
        stem = os.path.splitext(os.path.basename(path))[0]
        if path.endswith(".ir"):
            module = parse_module(text, stem)
            verify_module(module)
        else:
            module = compile_source(text, stem)
        modules.append(module)
    return _combine(modules, link_options, name)


def _combine(
    modules: list[Module], link_options: list[str] | None, name: str
) -> Module:
    if len(modules) == 1:
        combined = modules[0]
        combined.name = name
    else:
        combined = link_modules(modules, name)
    combined.metadata[LINK_OPTIONS_KEY] = list(link_options or [])
    verify_module(combined)
    return combined


def link_options_of(module: Module) -> list[str]:
    """The embedded options ``noelle-bin`` consults when finalizing."""
    return list(module.metadata.get(LINK_OPTIONS_KEY, []))
