"""repro.workloads — MiniC benchmarks shaped after the paper's suites.

* :mod:`repro.workloads.parsec` — PARSEC 3.0-shaped kernels,
* :mod:`repro.workloads.mibench` — MiBench-shaped kernels,
* :mod:`repro.workloads.spec` — SPEC CPU2017-shaped kernels.
"""

from .registry import Workload, all_workloads, get, suite

__all__ = ["Workload", "all_workloads", "get", "suite"]
