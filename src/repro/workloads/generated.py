"""Generated workload families (the fuzzer's corpus as benchmarks).

Each family is a dependence shape of :mod:`repro.fuzz.gen`; its
members are seeded generated programs whose loops all share that
shape.  Registering a family makes Figure 3/5-style sweeps (loop
counts, speedup curves) run over hundreds of programs instead of the
21 hand-shaped suite workloads.

Families are **opt-in**: nothing registers at import time unless
``NOELLE_GENERATED_WORKLOADS=<per-family count>`` is set, so the
default registry (and everything parametrized over it) is unchanged.
Sweeps and tests call :func:`register_generated` /
:func:`unregister_generated` explicitly.
"""

from __future__ import annotations

import os

from ..fuzz.gen import SHAPES, generate_program
from .registry import _REGISTRY, Workload, _ensure_loaded, register

#: One family per generator dependence shape.
FAMILIES = SHAPES

#: Shapes whose loops the paper's Figure 5 parallelizes profitably.
_PARALLEL_FRIENDLY = {"independent", "reduction"}

_FAMILY_SEED_STRIDE = 7_919


def generated_workloads(
    families=FAMILIES, per_family: int = 8, seed: int = 1
) -> list[Workload]:
    """Build (without registering) the generated families."""
    workloads = []
    for family_index, family in enumerate(families):
        if family not in SHAPES:
            raise ValueError(f"unknown family {family!r}")
        for index in range(per_family):
            program_seed = (
                seed * _FAMILY_SEED_STRIDE + family_index * per_family + index
            )
            name = f"gen_{family}_{seed}_{index}"
            program = generate_program(program_seed, family=family, name=name)
            workloads.append(
                Workload(
                    name=name,
                    suite="generated",
                    source=program.source,
                    description=(
                        f"generated {family} family, campaign seed {seed}, "
                        f"program seed {program_seed}"
                    ),
                    parallel_friendly=family in _PARALLEL_FRIENDLY,
                    step_limit=2_000_000,
                )
            )
    return workloads


def register_generated(
    families=FAMILIES, per_family: int = 8, seed: int = 1
) -> list[Workload]:
    """Register generated families; idempotent per (family, seed, index)."""
    registered = []
    for workload in generated_workloads(families, per_family, seed):
        _ensure_loaded()
        if workload.name in _REGISTRY:
            registered.append(_REGISTRY[workload.name])
            continue
        registered.append(register(workload))
    return registered


def unregister_generated() -> int:
    """Drop every suite="generated" entry; returns how many were removed."""
    _ensure_loaded()
    names = [
        name for name, w in _REGISTRY.items() if w.suite == "generated"
    ]
    for name in names:
        del _REGISTRY[name]
    return len(names)


def as_micro_tests(workloads: list[Workload]):
    """Adapt workloads for ``repro.testing.harness.run_corpus(tests=...)``."""
    from ..testing.corpus import MicroTest

    return [
        MicroTest(w.name, w.source, {"generated", w.suite}) for w in workloads
    ]


_ENV_COUNT = os.environ.get("NOELLE_GENERATED_WORKLOADS", "")
if _ENV_COUNT.strip():
    register_generated(per_family=max(1, int(_ENV_COUNT)))
