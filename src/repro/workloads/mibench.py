"""MiBench-shaped workloads.

MiBench is embedded-systems code: bit twiddling, table lookups, string
scanning, small-integer math.  Several of its kernels carry true
loop-carried dependences — the paper singles out ``crc`` as a benchmark
the NOELLE parallelizers cannot speed up (it needs memory-object cloning),
and that behaviour is reproduced here.
"""

from .registry import Workload, register

register(Workload(
    name="crc32",
    suite="mibench",
    description="CRC32: the running checksum is a carried shift/xor chain "
                "— NOT reducible; the paper calls this out as the case "
                "needing memory cloning (MiBench crc32).",
    parallel_friendly=False,
    source="""
int crc_table[256];

void make_table() {
  int n;
  for (n = 0; n < 256; n = n + 1) {
    int c = n;
    int k = 0;
    do {
      if (c & 1) { c = 551929 ^ ((c >> 1) & 2147483647); }
      else { c = (c >> 1) & 2147483647; }
      k = k + 1;
    } while (k < 8);
    crc_table[n] = c;
  }
}

int main() {
  int i;
  int crc = 65535;
  make_table();
  for (i = 0; i < 4000; i = i + 1) {
    int byte = (i * 37 + 11) % 256;
    crc = crc_table[(crc ^ byte) & 255] ^ ((crc >> 8) & 16777215);
  }
  print_int(crc);
  return crc;
}
""",
))

register(Workload(
    name="dijkstra",
    suite="mibench",
    description="Shortest paths: irregular while-shaped relaxation over an "
                "adjacency matrix (MiBench dijkstra).",
    parallel_friendly=False,
    source="""
int dist[64];
int visited[64];
int adj[4096];

void build(int n) {
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      int w = ((i * 31 + j * 17) % 19) + 1;
      if ((i + j) % 3 == 0) { w = 9999; }
      adj[i * 64 + j] = w;
    }
  }
}

int main() {
  int n = 64;
  int i;
  int round;
  build(n);
  for (i = 0; i < n; i = i + 1) { dist[i] = 9999; visited[i] = 0; }
  dist[0] = 0;
  round = 0;
  while (round < n) {
    int best = 9999 + 1;
    int u = 0 - 1;
    for (i = 0; i < n; i = i + 1) {
      if (!visited[i] && dist[i] < best) { best = dist[i]; u = i; }
    }
    if (u < 0) { break; }
    visited[u] = 1;
    for (i = 0; i < n; i = i + 1) {
      int nd = dist[u] + adj[u * 64 + i];
      if (nd < dist[i]) { dist[i] = nd; }
    }
    round = round + 1;
  }
  print_int(dist[63]);
  return dist[63];
}
""",
))

register(Workload(
    name="sha",
    suite="mibench",
    description="Hash rounds: a sequential chain of mixing operations over "
                "the running digest (MiBench sha).",
    parallel_friendly=False,
    source="""
int message[2048];

void fill(int n) {
  int i = 0;
  do {
    message[i] = (i * 2654435761) % 65536;
    i = i + 1;
  } while (i < n);
}

int main() {
  int i;
  int h0 = 1732584193;
  int h1 = 271733879;
  int h2 = 2562383102;
  fill(2048);
  for (i = 0; i < 2048; i = i + 1) {
    int w = message[i];
    int round;
    for (round = 0; round < 4; round = round + 1) {
      int f = (h1 & h2) | ((h1 ^ 2147483647) & h0);
      int temp = ((h0 << 5) | ((h0 >> 27) & 31)) + f + w + round;
      h2 = h1;
      h1 = h0;
      h0 = temp % 2147483647;
      w = ((w << 1) | ((w >> 30) & 1)) % 2147483647;
    }
  }
  print_int(h0 ^ h1 ^ h2);
  return h0 ^ h1;
}
""",
))

register(Workload(
    name="stringsearch",
    suite="mibench",
    description="Substring scanning: the per-position match loop has early "
                "exits, but the outer sweep over positions is independent "
                "(MiBench stringsearch).",
    parallel_friendly=True,
    source="""
char text[4096];
char pattern[8];

void setup() {
  int i;
  for (i = 0; i < 4096; i = i + 1) {
    text[i] = (char)(97 + ((i * 31 + i / 7) % 26));
  }
  i = 50;
  while (i < 4000) {
    text[i] = (char)107; text[i + 1] = (char)101; text[i + 2] = (char)121;
    i = i + 97;
  }
  pattern[0] = (char)107; pattern[1] = (char)101; pattern[2] = (char)121;
  pattern[3] = (char)0;
}

int match_at(int position) {
  int j = 0;
  while (pattern[j] != 0) {
    if (text[position + j] != pattern[j]) { return 0; }
    j = j + 1;
  }
  return 1;
}

int main() {
  int i;
  int found = 0;
  setup();
  for (i = 0; i < 4093; i = i + 1) {
    found = found + match_at(i);
  }
  print_int(found);
  return found;
}
""",
))

register(Workload(
    name="bitcount",
    suite="mibench",
    description="Population counts over a value stream with a total "
                "reduction — cleanly DOALL (MiBench bitcount).",
    parallel_friendly=True,
    source="""
int popcount(int value) {
  int count = 0;
  int v = value;
  while (v != 0) {
    count = count + (v & 1);
    v = (v >> 1) & 2147483647;
  }
  return count;
}

int main() {
  int i;
  int total = 0;
  for (i = 0; i < 2200; i = i + 1) {
    total = total + popcount(i * 2654435761 % 2147483647);
  }
  print_int(total);
  return total;
}
""",
))

register(Workload(
    name="susan",
    suite="mibench",
    description="Image smoothing: brightness-weighted neighborhood filter "
                "over a pixel grid (MiBench susan).",
    parallel_friendly=True,
    source="""
int image[2704];
int output[2704];
int brightness = 37;

void load_image(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { image[i] = (i * 73 + 19) % 256; }
}

void smooth(int *src, int *dst, int width, int n) {
  int i;
  for (i = width + 1; i < n - width - 1; i = i + 1) {
    int threshold = brightness * 2 + width / 4;
    int center = src[i];
    int acc = center * 4;
    acc = acc + src[i - 1] + src[i + 1];
    acc = acc + src[i - width] + src[i + width];
    if (acc > threshold) { dst[i] = acc / 8; }
    else { dst[i] = threshold / 8; }
  }
}

int main() {
  int i;
  int checksum = 0;
  load_image(2704);
  smooth(image, output, 52, 2704);
  for (i = 0; i < 2704; i = i + 1) {
    checksum = checksum + output[i];
  }
  print_int(checksum);
  return checksum;
}
""",
))

register(Workload(
    name="basicmath",
    suite="mibench",
    description="Cubic-solver style float kernel per input with a checksum "
                "reduction (MiBench basicmath).",
    parallel_friendly=True,
    source="""
double solve(double a, double b, double c) {
  double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) { return 0.0 - disc * 0.001; }
  return (0.0 - b + sqrt(disc)) / (2.0 * a);
}

int main() {
  int i;
  double total = 0.0;
  for (i = 1; i < 1400; i = i + 1) {
    double a = 1.0 + (double)(i % 7);
    double b = (double)(i % 23) - 11.0;
    double c = (double)(i % 13) - 6.0;
    total = total + solve(a, b, c);
  }
  print_float(total);
  return 0;
}
""",
))

register(Workload(
    name="qsort",
    suite="mibench",
    description="Recursive quicksort: call-tree parallelism, not loop "
                "parallelism (MiBench qsort).",
    parallel_friendly=False,
    source="""
int values[1500];

void fill(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { values[i] = (i * 48271) % 65537; }
}

void sort_range(int lo, int hi) {
  int pivot;
  int i;
  int store;
  int tmp;
  if (lo >= hi) { return; }
  pivot = values[hi];
  store = lo;
  for (i = lo; i < hi; i = i + 1) {
    if (values[i] < pivot) {
      tmp = values[i]; values[i] = values[store]; values[store] = tmp;
      store = store + 1;
    }
  }
  tmp = values[store]; values[store] = values[hi]; values[hi] = tmp;
  sort_range(lo, store - 1);
  sort_range(store + 1, hi);
}

int main() {
  int i;
  int checksum = 0;
  fill(1500);
  sort_range(0, 1499);
  for (i = 1; i < 1500; i = i + 1) {
    if (values[i - 1] > values[i]) { checksum = checksum + 1000000; }
  }
  checksum = checksum + values[0] + values[749] + values[1499];
  print_int(checksum);
  return checksum;
}
""",
))
