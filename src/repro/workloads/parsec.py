"""PARSEC 3.0-shaped workloads.

PARSEC programs are data-parallel kernels over arrays of independent work
items — the shape the paper's Figure 5 shows DOALL/HELIX/DSWP exploiting
while gcc/icc stay at 1.0x (while-shaped loops, calls in bodies, scalar
accumulators the vendors' analyses refuse).
"""

from .registry import Workload, register

register(Workload(
    name="blackscholes",
    suite="parsec",
    description="Option pricing: independent per-option float kernel with a "
                "checksum reduction (PARSEC blackscholes).",
    parallel_friendly=True,
    source="""
double sptprice[1200];
double strike[1200];
double rate[1200];
double volatility[1200];
double otime[1200];

double cndf(double x) {
  double ax = fabs(x);
  double k = 1.0 / (1.0 + 0.2316419 * ax);
  double poly = k * (0.319381530 + k * (0.0 - 0.356563782
             + k * (1.781477937 + k * (0.0 - 1.821255978 + k * 1.330274429))));
  double value = 1.0 - 0.39894228 * exp(0.0 - 0.5 * x * x) * poly;
  if (x < 0.0) { value = 1.0 - value; }
  return value;
}

double price_option(double s, double k, double r, double v, double t) {
  double srt = v * sqrt(t);
  double d1 = (log(s / k) + (r + 0.5 * v * v) * t) / srt;
  double d2 = d1 - srt;
  return s * cndf(d1) - k * exp(0.0 - r * t) * cndf(d2);
}

void setup(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    sptprice[i] = 90.0 + (i % 40);
    strike[i] = 95.0 + (i % 30);
    rate[i] = 0.01 + 0.0001 * (i % 17);
    volatility[i] = 0.2 + 0.001 * (i % 23);
    otime[i] = 0.5 + 0.01 * (i % 11);
  }
}

int main() {
  int i;
  double total = 0.0;
  setup(1200);
  for (i = 0; i < 1200; i = i + 1) {
    total = total + price_option(sptprice[i], strike[i], rate[i],
                                 volatility[i], otime[i]);
  }
  print_float(total);
  return 0;
}
""",
))

register(Workload(
    name="swaptions",
    suite="parsec",
    description="Monte-Carlo swaption pricing: per-path simulation with "
                "PRVG calls and a sum reduction (PARSEC swaptions).",
    parallel_friendly=True,
    source="""
int path_value(int seed) {
  int state = seed * 2654435761;
  int step;
  int value = 0;
  for (step = 0; step < 40; step = step + 1) {
    state = (state * 1103515245 + 12345) % 2147483647;
    if (state < 0) { state = 0 - state; }
    value = value + state % 97 - 48;
  }
  return value;
}

int main() {
  int path;
  int total = 0;
  for (path = 0; path < 900; path = path + 1) {
    total = total + path_value(path + 7);
  }
  print_int(total);
  return total;
}
""",
))

register(Workload(
    name="streamcluster",
    suite="parsec",
    description="Clustering: nearest-center assignment over points, "
                "distance math plus a cost reduction (PARSEC streamcluster).",
    parallel_friendly=True,
    source="""
double px[600];
double py[600];
double cx[8];
double cy[8];

void setup(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    px[i] = (double)(i % 37) * 1.7;
    py[i] = (double)(i % 53) * 0.9;
  }
  for (i = 0; i < 8; i = i + 1) {
    cx[i] = (double)(i * 13);
    cy[i] = (double)(i * 7);
  }
}

double assign_cost(double x, double y) {
  int c;
  double best = 1000000000.0;
  for (c = 0; c < 8; c = c + 1) {
    double dx = x - cx[c];
    double dy = y - cy[c];
    double d = dx * dx + dy * dy;
    if (d < best) { best = d; }
  }
  return best;
}

int main() {
  int i;
  double cost = 0.0;
  setup(600);
  for (i = 0; i < 600; i = i + 1) {
    cost = cost + assign_cost(px[i], py[i]);
  }
  print_float(cost);
  return 0;
}
""",
))

register(Workload(
    name="fluidanimate",
    suite="parsec",
    description="Grid stencil: new state from neighbor cells of the old "
                "state, double-buffered (PARSEC fluidanimate pattern).",
    parallel_friendly=True,
    source="""
double old_grid[2500];
double new_grid[2500];

void init(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    old_grid[i] = (double)((i * 31) % 101) * 0.01;
  }
}

double viscosity = 0.4;

void advance(double *old_cells, double *new_cells, int width, int n) {
  int i;
  for (i = width + 1; i < n - width - 1; i = i + 1) {
    double damp = viscosity * 0.25 + 0.5;
    double center = old_cells[i];
    double left = old_cells[i - 1];
    double right = old_cells[i + 1];
    double up = old_cells[i - width];
    double down = old_cells[i + width];
    new_cells[i] = center * damp + (left + right + up + down) * 0.1;
  }
}

int main() {
  int i;
  double checksum = 0.0;
  init(2500);
  advance(old_grid, new_grid, 50, 2500);
  for (i = 0; i < 2500; i = i + 1) {
    checksum = checksum + new_grid[i];
  }
  print_float(checksum);
  return 0;
}
""",
))

register(Workload(
    name="canneal",
    suite="parsec",
    description="Simulated annealing: randomized swap evaluation over a "
                "netlist with an accepted-cost reduction (PARSEC canneal).",
    parallel_friendly=True,
    source="""
int cost_table[512];

void init(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    cost_table[i] = (i * 199) % 331;
  }
}

int evaluate(int a, int b) {
  int delta = cost_table[a % 512] - cost_table[b % 512];
  if (delta < 0) { delta = 0 - delta; }
  return delta % 61;
}

int main() {
  int i;
  int accepted = 0;
  init(512);
  for (i = 0; i < 2600; i = i + 1) {
    int a = (i * 7919) % 512;
    int b = (i * 104729 + 31) % 512;
    accepted = accepted + evaluate(a, b);
  }
  print_int(accepted);
  return accepted;
}
""",
))

register(Workload(
    name="bodytrack",
    suite="parsec",
    description="Particle filter: per-particle likelihood weights with "
                "float math and a normalization reduction (PARSEC bodytrack).",
    parallel_friendly=True,
    source="""
double observation[40];

void observe(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    observation[i] = (double)((i * 17) % 29) * 0.1;
  }
}

double likelihood(int particle) {
  int i;
  double error = 0.0;
  for (i = 0; i < 40; i = i + 1) {
    double predicted = (double)((particle * 13 + i * 7) % 31) * 0.1;
    double diff = predicted - observation[i];
    error = error + diff * diff;
  }
  return exp(0.0 - error * 0.05);
}

int main() {
  int p;
  double total_weight = 0.0;
  observe(40);
  for (p = 0; p < 250; p = p + 1) {
    total_weight = total_weight + likelihood(p);
  }
  print_float(total_weight);
  return 0;
}
""",
))
