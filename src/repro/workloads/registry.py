"""Workload registry.

Each workload is a MiniC program shaped after a benchmark from the
paper's suites (PARSEC 3.0, MiBench, SPEC CPU2017): same dominant code
patterns (loop shapes, dependence structure, memory behaviour), scaled to
interpreter-friendly sizes.  The registry is what every experiment
iterates over.
"""

from __future__ import annotations

from ..ir import Module


class Workload:
    """One benchmark program."""

    def __init__(
        self,
        name: str,
        suite: str,
        source: str,
        description: str,
        parallel_friendly: bool,
        step_limit: int = 50_000_000,
    ):
        self.name = name
        self.suite = suite  # "parsec" | "mibench" | "spec"
        self.source = source
        self.description = description
        #: Whether the paper's Figure 5 shows meaningful speedups for the
        #: pattern this program represents.
        self.parallel_friendly = parallel_friendly
        self.step_limit = step_limit

    def compile(self) -> Module:
        """A fresh module (workloads are mutated by transformations).

        With ``NOELLE_CACHE_DIR`` set, a warm hit decodes the cached
        binary module instead of re-running the frontend.
        """
        from ..cache import cached_compile

        return cached_compile(self.source, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.suite}/{self.name}>"


_REGISTRY: dict[str, Workload] = {}
_LOADED = False


def register(workload: Workload) -> Workload:
    _ensure_loaded()
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def suite(name: str) -> list[Workload]:
    _ensure_loaded()
    return [w for w in _REGISTRY.values() if w.suite == name]


def _ensure_loaded() -> None:
    global _LOADED
    if not _LOADED:
        _LOADED = True
        # Self-registering suites; `generated` contributes fuzz-generated
        # families only when NOELLE_GENERATED_WORKLOADS opts in.
        from . import generated, mibench, parsec, spec  # noqa: F401
