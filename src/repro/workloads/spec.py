"""SPEC CPU2017-shaped workloads.

SPEC programs are large, irregular, and memory-bound; the paper reports
only 1–5% speedups on them without speculation (Section 4.4).  These
kernels reproduce the blockers: pointer chasing through heap structures,
data-dependent branches, and loops whose hot work hides behind carried
state — with small DOALL-able side loops that yield the few percent.
"""

from .registry import Workload, register

register(Workload(
    name="mcf",
    suite="spec",
    description="Network simplex flavor: pointer chasing over heap-allocated "
                "arc lists; the hot loop is inherently serial (SPEC 505.mcf).",
    parallel_friendly=False,
    source="""
struct Arc { int cost; int next; };

int arc_cost[3000];
int arc_next[3000];

void build(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    arc_cost[i] = (i * 97) % 211 - 100;
    arc_next[i] = (i * 61 + 13) % n;
  }
}

int main() {
  int walk = 0;
  int node = 0;
  int total = 0;
  int i;
  build(3000);
  while (walk < 30000) {
    total = total + arc_cost[node];
    node = arc_next[node];
    walk = walk + 1;
  }
  for (i = 0; i < 3000; i = i + 1) {
    total = total + arc_cost[i] % 7;
  }
  print_int(total);
  return total;
}
""",
))

register(Workload(
    name="lbm",
    suite="spec",
    description="Lattice-Boltzmann stencil sweep over a double-buffered "
                "grid (SPEC 519.lbm).",
    parallel_friendly=True,
    source="""
double src_grid[3000];
double dst_grid[3000];

void init(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    src_grid[i] = 1.0 + (double)((i * 13) % 7) * 0.1;
  }
}

void sweep(double *src, double *dst, int n) {
  int i;
  for (i = 1; i < n - 1; i = i + 1) {
    double rho = src[i - 1] * 0.25 + src[i] * 0.5 + src[i + 1] * 0.25;
    dst[i] = rho * 0.98 + 0.02;
  }
}

int main() {
  int i;
  double mass = 0.0;
  init(3000);
  sweep(src_grid, dst_grid, 3000);
  for (i = 0; i < 3000; i = i + 1) {
    mass = mass + dst_grid[i];
  }
  print_float(mass);
  return 0;
}
""",
))

register(Workload(
    name="imagick",
    suite="spec",
    description="Per-pixel color transform with saturation — wide DOALL "
                "loop over pixel channels (SPEC 538.imagick).",
    parallel_friendly=True,
    source="""
int pixels[4200];

void load(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { pixels[i] = (i * 139 + 7) % 256; }
}

int transform(int p) {
  int v = (p * 118 + 1400) / 100;
  if (v > 255) { v = 255; }
  if (v < 0) { v = 0; }
  return v;
}

int main() {
  int i;
  int histogram_sum = 0;
  load(4200);
  for (i = 0; i < 4200; i = i + 1) {
    histogram_sum = histogram_sum + transform(pixels[i]);
  }
  print_int(histogram_sum);
  return histogram_sum;
}
""",
))

register(Workload(
    name="x264",
    suite="spec",
    description="Sum-of-absolute-differences block matching: the distance "
                "loops are DOALL, motion-vector selection is serial "
                "(SPEC 525.x264).",
    parallel_friendly=True,
    source="""
int frame_a[3600];
int frame_b[3600];

void load_frames(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    frame_a[i] = (i * 37) % 256;
    frame_b[i] = (i * 37 + i / 19) % 256;
  }
}

int lambda = 4;

int block_sad(int *a, int *b, int n) {
  int i;
  int sad = 0;
  for (i = 0; i < n; i = i + 1) {
    int weight = lambda * 3 + 2;
    int d = a[i] - b[i];
    if (d < 0) { d = 0 - d; }
    sad = sad + d * weight / 16;
  }
  return sad;
}

int main() {
  load_frames(3600);
  int sad = block_sad(frame_a, frame_b, 3600);
  print_int(sad);
  return sad;
}
""",
))

register(Workload(
    name="deepsjeng",
    suite="spec",
    description="Game-tree evaluation: data-dependent branching over board "
                "features; the minimax chain is serial (SPEC 531.deepsjeng).",
    parallel_friendly=False,
    source="""
int board[144];

void setup() {
  int i;
  for (i = 0; i < 144; i = i + 1) { board[i] = (i * 7 + 3) % 13 - 6; }
}

int evaluate(int depth, int alpha, int position) {
  int score;
  int move;
  if (depth == 0) {
    return board[position % 144] * 3 + position % 5;
  }
  score = 0 - 30000;
  for (move = 0; move < 6; move = move + 1) {
    int child = (position * 6 + move + 1) % 997;
    int value = 0 - evaluate(depth - 1, 0 - alpha, child);
    if (value > score) { score = value; }
    if (score > alpha) { alpha = score; }
  }
  return score;
}

int main() {
  setup();
  int result = evaluate(5, 0 - 30000, 1);
  print_int(result);
  return result;
}
""",
))

register(Workload(
    name="xz",
    suite="spec",
    description="Match finding: hash-chain probes with carried best-match "
                "state (SPEC 557.xz).",
    parallel_friendly=False,
    source="""
int data[3000];
int hash_head[256];

void setup(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { data[i] = (i * 131 + 17) % 251; }
  for (i = 0; i < 256; i = i + 1) { hash_head[i] = 0 - 1; }
}

int main() {
  int i;
  int matches = 0;
  int best_len = 0;
  setup(3000);
  for (i = 0; i < 2996; i = i + 1) {
    int h = (data[i] * 33 + data[i + 1]) % 256;
    int prev = hash_head[h];
    if (prev >= 0) {
      int len = 0;
      while (len < 4 && data[prev + len] == data[i + len]) {
        len = len + 1;
      }
      if (len > best_len) { best_len = len; }
      if (len >= 2) { matches = matches + 1; }
    }
    hash_head[h] = i;
  }
  print_int(matches + best_len);
  return matches;
}
""",
))

register(Workload(
    name="nab",
    suite="spec",
    description="Molecular-dynamics nonbonded forces: pairwise distance "
                "kernel with an energy reduction (SPEC 544.nab).",
    parallel_friendly=True,
    source="""
double posx[160];
double posy[160];
double posz[160];

void place(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    posx[i] = (double)((i * 17) % 43) * 0.3;
    posy[i] = (double)((i * 29) % 37) * 0.4;
    posz[i] = (double)((i * 41) % 31) * 0.5;
  }
}

double pair_energy(int i, int j) {
  double dx = posx[i] - posx[j];
  double dy = posy[i] - posy[j];
  double dz = posz[i] - posz[j];
  double r2 = dx * dx + dy * dy + dz * dz + 0.01;
  return 1.0 / (r2 * r2 * r2);
}

int main() {
  int i;
  double energy = 0.0;
  place(160);
  for (i = 0; i < 160; i = i + 1) {
    int j;
    double local = 0.0;
    for (j = 0; j < 160; j = j + 1) {
      if (j != i) { local = local + pair_energy(i, j); }
    }
    energy = energy + local;
  }
  print_float(energy);
  return 0;
}
""",
))
