"""repro.xforms — the ten custom tools of the paper (Table 3).

============================  =====================================
Custom tool (paper name)      Module
============================  =====================================
DOALL                         :mod:`repro.xforms.doall`
HELIX                         :mod:`repro.xforms.helix`
DSWP                          :mod:`repro.xforms.dswp`
Perspective (PERS)            :mod:`repro.xforms.perspective`
Loop Invariant Code Motion    :mod:`repro.xforms.licm`
Dead Function Elim. (DEAD)    :mod:`repro.xforms.dead`
Time Squeezer (TIME)          :mod:`repro.xforms.timesqueezer`
Compiler-based timing (COOS)  :mod:`repro.xforms.coos`
PRVJeeves (PRVJ)              :mod:`repro.xforms.prvjeeves`
CARAT                         :mod:`repro.xforms.carat`
============================  =====================================
"""

from .carat import CARAT, CARATStats
from .coos import CompilerTiming, timing_accuracy
from .dead import DeadFunctionEliminator
from .doall import DOALL
from .dswp import DSWP
from .helix import HELIX
from .licm import LICM
from .parallelizer_common import MAX_CORES, ParallelizationError
from .perspective import Perspective
from .prvjeeves import PRVJeeves
from .timesqueezer import TimeSqueezer, TimeSqueezerStats

__all__ = [
    "CARAT",
    "CARATStats",
    "CompilerTiming",
    "timing_accuracy",
    "DeadFunctionEliminator",
    "DOALL",
    "DSWP",
    "HELIX",
    "LICM",
    "MAX_CORES",
    "ParallelizationError",
    "Perspective",
    "PRVJeeves",
    "TimeSqueezer",
    "TimeSqueezerStats",
]
