"""CARAT on NOELLE (Section 3, "CARAT").

CARAT (Suchy et al. [PLDI'20]) replaces virtual-memory protection with
compiler- and runtime-based address translation: every memory instruction
that cannot be proven safe at compile time is *guarded* with a runtime
check.  The compiler's job is to prove away and de-duplicate as many
guards as possible.

NOELLE abstractions used (Table 4 row "CARAT"): PDG + aSCCDAG + INV find
the memory instructions needing guards and those whose address is loop
invariant (guard once, outside), DFE removes guards dominated by an
earlier guard of the same location, L + LB + IV merge per-iteration guards
of affine accesses into one range guard in the pre-header, and SCD places
the guard calls.
"""

from __future__ import annotations

from ..analysis.aa import underlying_object
from ..core.dataflow import DataFlowEngine, DataFlowProblem
from ..core.noelle import Noelle
from ..interp.engine import invalidate_module
from .. import ir
from ..ir.intrinsics import declare_intrinsic


class CARATStats:
    def __init__(self) -> None:
        self.candidates = 0
        self.proven_safe = 0
        self.hoisted = 0
        self.merged = 0
        self.deduplicated = 0
        self.guards_inserted = 0
        #: Guards of INV-proven invariant addresses that stay in place
        #: because the address computation has not been hoisted yet;
        #: running LICM first turns these into pre-header guards.
        self.invariant_unhoisted = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CARAT {self.guards_inserted} guards from {self.candidates} "
            f"candidates (safe={self.proven_safe} hoisted={self.hoisted} "
            f"dedup={self.deduplicated})>"
        )


class CARAT:
    """The memory-guard injection and optimization custom tool."""

    name = "carat"

    def __init__(self, noelle: Noelle):
        self.noelle = noelle

    def run(self) -> CARATStats:
        stats = CARATStats()
        for fn in list(self.noelle.module.defined_functions()):
            if fn.metadata.get("noelle.task"):
                continue
            self.run_on_function(fn, stats)
            invalidate_module(self.noelle.module, fn)
        return stats

    def run_on_function(self, fn: ir.Function, stats: CARATStats) -> None:
        self._stats_invariant_unhoisted = 0
        guard = declare_intrinsic(self.noelle.module, "carat_guard")
        info = self.noelle.loop_info(fn)
        dom = self.noelle.dominators(fn)
        available = self._available_checked_pointers(fn)
        #: pointer value id -> first guard instruction (dedup via dominance).
        guarded: dict[int, ir.Instruction] = {}
        plan: list[tuple[ir.Instruction, ir.Value, ir.BasicBlock | None]] = []
        for block in fn.blocks:
            for inst in list(block.instructions):
                pointer = self._guardable_pointer(inst)
                if pointer is None:
                    continue
                stats.candidates += 1
                if self._statically_safe(pointer):
                    stats.proven_safe += 1
                    continue
                anchor = guarded.get(id(pointer))
                if anchor is not None and dom.dominates(anchor, inst):
                    stats.deduplicated += 1
                    continue
                if id(pointer) in available.in_of(inst):
                    # DFE: an earlier access already validated this exact
                    # pointer on *every* path reaching here.
                    stats.deduplicated += 1
                    continue
                merged = self._affine_range_guard(info, inst, pointer)
                if merged is not None:
                    stats.merged += 1
                    plan.append(merged)
                    guarded[id(pointer)] = inst
                    continue
                hoist_target = self._loop_invariant_target(info, inst, pointer)
                if hoist_target is not None:
                    stats.hoisted += 1
                plan.append((inst, pointer, hoist_target))
                guarded[id(pointer)] = inst
        for entry in plan:
            if callable(entry):
                entry(guard)
            else:
                inst, pointer, hoist_target = entry
                self._insert_guard(guard, inst, pointer, hoist_target)
            stats.guards_inserted += 1
        stats.invariant_unhoisted += self._stats_invariant_unhoisted
        self.noelle._loopinfos.pop(id(fn), None)

    # -- analysis -----------------------------------------------------------------------
    def _available_checked_pointers(self, fn: ir.Function):
        """DFE: forward must-analysis of pointers already validated.

        A load or store validates its pointer (it would have trapped
        otherwise); ``free`` invalidates everything it may release.  The
        intersection meet means a pointer is "available" only when checked
        on every incoming path — exactly the guard-elision condition.
        """
        from ..core.dataflow import DataFlowEngine, DataFlowProblem

        def gen(inst: ir.Instruction) -> set:
            pointer = self._guardable_pointer(inst)
            return {id(pointer)} if pointer is not None else set()

        def kill(inst: ir.Instruction) -> set:
            if isinstance(inst, ir.Call):
                callee = inst.called_function()
                if callee is not None and callee.name == "free":
                    # Conservatively drop every fact: the freed region may
                    # be any of them.
                    return set(all_pointer_ids)
            return set()

        all_pointer_ids: set[int] = set()
        for inst in fn.instructions():
            pointer = self._guardable_pointer(inst)
            if pointer is not None:
                all_pointer_ids.add(id(pointer))
        problem = DataFlowProblem("forward", gen, kill, meet="intersection")
        return DataFlowEngine().run(fn, problem)

    @staticmethod
    def _guardable_pointer(inst: ir.Instruction) -> ir.Value | None:
        if isinstance(inst, ir.Load):
            return inst.pointer
        if isinstance(inst, ir.Store):
            return inst.pointer
        return None

    def _statically_safe(self, pointer: ir.Value) -> bool:
        """In-bounds accesses to identified allocations need no guard."""
        base = underlying_object(pointer)
        if isinstance(base, ir.GlobalVariable):
            return self._constant_in_bounds(pointer, base.allocated_type)
        if isinstance(base, ir.Alloca):
            return self._constant_in_bounds(pointer, base.allocated_type)
        return False

    @staticmethod
    def _constant_in_bounds(pointer: ir.Value, allocated: ir.Type) -> bool:
        if not isinstance(pointer, ir.ElemPtr):
            return not isinstance(pointer, ir.Instruction) or isinstance(
                pointer, (ir.Alloca,)
            )
        offset = 0
        current: ir.Type = pointer.base.type.pointee
        indices = pointer.indices
        first = indices[0]
        if not isinstance(first, ir.ConstantInt) or first.value != 0:
            return False
        for index in indices[1:]:
            if not isinstance(index, ir.ConstantInt):
                return False
            if current.is_array():
                if not 0 <= index.value < current.count:
                    return False
                current = current.element
            elif current.is_struct():
                current = current.fields[index.value]
            else:
                return False
        del offset
        return True

    def _affine_range_guard(self, info, inst: ir.Instruction, pointer: ir.Value):
        """Merge the per-iteration guards of an affine access (L + IV + LB).

        For ``a[i]`` with ``i = {c0, +, s}`` governed by ``i < bound``, one
        range guard of ``a[c0 .. bound)`` in the pre-header replaces the
        per-iteration point guards.  Returns a deferred-insertion closure,
        or None when the access is not a recognizable affine walk.
        """
        from ..analysis.scev import SCEVAddRec, SCEVConstant, ScalarEvolution

        loop = info.loop_of(inst.parent)
        if loop is None or not isinstance(pointer, ir.ElemPtr):
            return None
        base = pointer.base
        if isinstance(base, ir.Instruction) and loop.contains(base):
            return None  # the base itself varies per iteration
        indices = pointer.indices
        scev = ScalarEvolution(loop)
        variable_positions = [
            i
            for i, index in enumerate(indices)
            if not isinstance(index, ir.ConstantInt)
        ]
        if len(variable_positions) != 1:
            return None
        position = variable_positions[0]
        evolution = scev.evolution_of(indices[position])
        if not isinstance(evolution, SCEVAddRec):
            return None
        if not isinstance(evolution.start, SCEVConstant):
            return None
        step = evolution.constant_step()
        if step is None or step <= 0:
            return None
        # The loop must be governed by a compare against an invariant bound.
        from ..core.induction import InductionVariableManager

        ivs = InductionVariableManager(loop)
        governing = ivs.governing_iv()
        if governing is None or governing.exit_compare is None:
            return None
        compare = governing.exit_compare
        if compare.predicate not in ("slt", "sle", "ult", "ule"):
            return None
        bound = None
        for operand in (compare.lhs, compare.rhs):
            if isinstance(operand, ir.ConstantInt):
                bound = operand
            elif not (isinstance(operand, ir.Instruction) and loop.contains(operand)):
                bound = operand
        if bound is None:
            return None
        # LB: create the canonical pre-header the range guard lives in.
        from ..core.loopbuilder import LoopBuilder

        fn = inst.function()
        pre_header = LoopBuilder(fn).ensure_pre_header(loop)
        start_value = evolution.start.value
        stride_ty = pointer.type.pointee

        def insert(guard_fn: ir.Function) -> None:
            builder = ir.IRBuilder()
            builder.position_before(pre_header.terminator)
            start_indices: list[ir.Value] = []
            for i, index in enumerate(indices):
                if i == position:
                    start_indices.append(ir.const_int(start_value))
                else:
                    start_indices.append(index)
            first = builder.elem_ptr(base, start_indices, "guard.base")
            span = builder.sub(bound, ir.const_int(start_value), "guard.span")
            extent = builder.mul(
                span, ir.const_int(max(stride_ty.size_in_slots(), 1)), "guard.extent"
            )
            cast = builder.cast("bitcast", first, ir.PointerType(ir.I8), "guard.ptr")
            builder.call(guard_fn, [cast, extent])

        return insert

    def _loop_invariant_target(
        self, info, inst: ir.Instruction, pointer: ir.Value
    ) -> ir.BasicBlock | None:
        """If the address is invariant in the enclosing loop, guard it once
        in the pre-header instead of every iteration (INV + LB).

        Addresses *computed inside* the loop still qualify when INV proves
        them invariant — but then the computation itself must be hoisted
        too, so this fast path only claims the ready-to-hoist cases:
        out-of-loop addresses and in-loop addresses LICM already moved.
        """
        loop = info.loop_of(inst.parent)
        if loop is None:
            return None
        if isinstance(pointer, ir.Instruction) and loop.contains(pointer):
            # INV (Algorithm 2): invariant in-loop addresses could be
            # hoisted with their computation; non-invariant ones never.
            invariants = self.noelle.loop_of(loop).invariants
            if invariants.is_invariant(pointer):
                # Invariant but not hoisted: the guard must stay with the
                # in-loop address; LICM-before-CARAT unlocks the hoist.
                self._stats_invariant_unhoisted += 1
            return None
        entries = loop.entries()
        if len(entries) == 1 and len(entries[0].successors()) == 1:
            return entries[0]
        return None

    # -- mechanics ----------------------------------------------------------------------
    def _insert_guard(
        self,
        guard: ir.Function,
        inst: ir.Instruction,
        pointer: ir.Value,
        hoist_target: ir.BasicBlock | None,
    ) -> None:
        size = ir.const_int(max(pointer.type.pointee.size_in_slots(), 1))
        if hoist_target is not None:
            block = hoist_target
            position = (
                block.instructions.index(block.terminator)
                if block.terminator is not None
                else len(block.instructions)
            )
        else:
            block = inst.parent
            position = block.instructions.index(inst)
        cast = ir.Cast("bitcast", pointer, ir.PointerType(ir.I8), "guard.ptr")
        call = ir.Call(guard, [cast, size])
        fn = block.parent
        for offset, new_inst in enumerate((cast, call)):
            new_inst.parent = block
            block.instructions.insert(position + offset, new_inst)
            if fn is not None:
                fn.assign_name(new_inst)
