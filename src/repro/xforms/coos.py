"""Compiler-based timing on NOELLE (Section 3, "Compiler-Based Timing").

COOS (compiler + OS co-design, Ghosh et al. [SC'20]) replaces hardware
timer interrupts with compiler-injected calls to OS routines: the compiler
guarantees that no execution path runs longer than a budget of cycles
without yielding to the OS.

NOELLE abstractions used (Table 4 row "COOS"): the data-flow engine runs
the specialized *cycles-since-last-hook* analysis, PRO focuses placement
on code that actually runs, L/FR/LB handle potentially-infinite loops
(every loop gets a latch hook so even a non-terminating loop yields), and
CG bounds the cost of call sites by their callees' summaries.
"""

from __future__ import annotations

from ..core.noelle import Noelle
from ..interp.engine import invalidate_module
from ..interp.interp import INSTRUCTION_COSTS, INTRINSIC_COSTS
from .. import ir
from ..ir.intrinsics import declare_intrinsic


class CompilerTiming:
    """The COOS custom tool."""

    name = "coos"

    def __init__(self, noelle: Noelle, budget_cycles: int = 400):
        self.noelle = noelle
        #: Maximum cycles allowed between consecutive OS hooks.
        self.budget = budget_cycles

    def run(self) -> int:
        """Inject hooks module-wide; returns how many were inserted."""
        inserted = 0
        for fn in list(self.noelle.module.defined_functions()):
            if fn.metadata.get("noelle.task"):
                continue
            inserted += self.run_on_function(fn)
            invalidate_module(self.noelle.module, fn)
        return inserted

    def run_on_function(self, fn: ir.Function) -> int:
        hook = declare_intrinsic(self.noelle.module, "os_time_hook")
        call_costs = self._call_cost_summaries()
        inserted = 0
        # Every loop latch gets a hook: loops are the only way a path can
        # exceed any static budget (including infinite loops).
        info = self.noelle.loop_info(fn)
        hooked_blocks: set[int] = set()
        for loop in info.loops():
            body_cost = self._block_path_cost(loop.blocks, call_costs)
            if body_cost * max(self._estimated_iterations(loop), 1) < self.budget:
                continue  # provably under budget for a whole invocation
            from ..core.loopbuilder import LoopBuilder

            # LB: canonicalize the entry so the pre-loop hook has a home
            # even for multi-entry loops (potentially-infinite loops get a
            # hook both before entry and on every back edge).
            pre = LoopBuilder(fn).ensure_pre_header(loop)
            if id(pre) not in hooked_blocks:
                hooked_blocks.add(id(pre))
                self._insert_hook_before_terminator(pre, hook, body_cost)
                inserted += 1
            for latch in loop.latches():
                if id(latch) in hooked_blocks:
                    continue
                hooked_blocks.add(id(latch))
                self._insert_hook_before_terminator(latch, hook, body_cost)
                inserted += 1
        # Straight-line budget: accumulate block costs along acyclic paths
        # (forward data-flow, max at merges approximated by union of costs).
        inserted += self._hook_long_paths(fn, hook, call_costs, hooked_blocks)
        self.noelle._loopinfos.pop(id(fn), None)
        return inserted

    # -- cost modeling --------------------------------------------------------------
    def _call_cost_summaries(self) -> dict[int, int]:
        """Worst-case cycles per function, through the call graph (CG)."""
        cg = self.noelle.call_graph()
        module = self.noelle.module
        summary: dict[int, int] = {}
        for fn in module.functions.values():
            if fn.is_declaration():
                summary[id(fn)] = INTRINSIC_COSTS.get(fn.name, 20)
            else:
                summary[id(fn)] = sum(
                    INSTRUCTION_COSTS.get(i.opcode, 1) for i in fn.instructions()
                )
        # One relaxation round per edge suffices for a rough upper bound;
        # recursion saturates at the budget (the hook in the body covers it).
        for _ in range(3):
            for fn in module.defined_functions():
                total = 0
                for inst in fn.instructions():
                    total += INSTRUCTION_COSTS.get(inst.opcode, 1)
                    if isinstance(inst, ir.Call):
                        for callee in cg.possible_callees(inst):
                            total += min(summary.get(id(callee), 20), self.budget)
                summary[id(fn)] = min(total, 10 * self.budget)
        return summary

    def _block_cost(self, block: ir.BasicBlock, call_costs: dict[int, int]) -> int:
        total = 0
        for inst in block.instructions:
            total += INSTRUCTION_COSTS.get(inst.opcode, 1)
            if isinstance(inst, ir.Call):
                callee = inst.called_function()
                if callee is not None:
                    total += min(call_costs.get(id(callee), 20), self.budget)
        return total

    def _block_path_cost(self, blocks, call_costs: dict[int, int]) -> int:
        return sum(self._block_cost(b, call_costs) for b in blocks)

    @staticmethod
    def _estimated_iterations(loop) -> int:
        # Without a profile assume loops are hot; with one, use it.
        return 1_000

    # -- placement --------------------------------------------------------------------
    def _insert_hook_before_terminator(
        self, block: ir.BasicBlock, hook: ir.Function, estimate: int
    ) -> None:
        term = block.terminator
        call = ir.Call(hook, [ir.const_int(min(estimate, self.budget))])
        call.parent = block
        index = block.instructions.index(term) if term is not None else len(
            block.instructions
        )
        block.instructions.insert(index, call)

    def _hook_long_paths(
        self,
        fn: ir.Function,
        hook: ir.Function,
        call_costs: dict[int, int],
        hooked_blocks: set[int],
    ) -> int:
        """DFE-powered pass: bound cycles between hooks on acyclic paths.

        Phase 1 (the engine): a forward *may* data-flow computes, per
        block, the set of hook-free blocks that can reach it — a block's
        own hook kills the facts.  Phase 2 turns the fact sets into cost
        sums and hooks blocks whose reaching hook-free cost exceeds the
        budget, then reruns until clean (hook insertion changes the kill
        sets).
        """
        from ..core.dataflow import DataFlowEngine, DataFlowProblem

        inserted = 0
        for _ in range(10):  # hooks monotonically increase: terminates
            all_block_ids = {id(b) for b in fn.blocks}

            def gen(inst: ir.Instruction) -> set:
                block = inst.parent
                if block is None or block.instructions[0] is not inst:
                    return set()
                return {id(block)} if id(block) not in hooked_blocks else set()

            def kill(inst: ir.Instruction) -> set:
                if isinstance(inst, ir.Call):
                    callee = inst.called_function()
                    if callee is not None and callee.name == "os_time_hook":
                        return set(all_block_ids)
                return set()

            problem = DataFlowProblem("forward", gen, kill, meet="union")
            result = DataFlowEngine().run(fn, problem)
            cost_of_block = {
                id(b): self._block_cost(b, call_costs) for b in fn.blocks
            }
            worst = None
            for block in fn.blocks:
                reaching = result.out_of_block(block)
                cost = sum(cost_of_block.get(bid, 0) for bid in reaching)
                if cost > self.budget and id(block) not in hooked_blocks:
                    worst = block if worst is None else worst
                    if cost > sum(
                        cost_of_block.get(bid, 0)
                        for bid in result.out_of_block(worst)
                    ):
                        worst = block
            if worst is None:
                break
            self._insert_hook_before_terminator(
                worst, hook, min(self.budget, 10 * self.budget)
            )
            hooked_blocks.add(id(worst))
            inserted += 1
        return inserted


def timing_accuracy(callback_cycles: list[int], total_cycles: int) -> dict[str, float]:
    """Largest and mean gap between consecutive hooks in a profiled run."""
    if not callback_cycles:
        return {"max_gap": float(total_cycles), "mean_gap": float(total_cycles)}
    gaps = []
    previous = 0
    for stamp in callback_cycles:
        gaps.append(stamp - previous)
        previous = stamp
    gaps.append(total_cycles - previous)
    return {
        "max_gap": float(max(gaps)),
        "mean_gap": float(sum(gaps) / len(gaps)),
        "hooks": float(len(callback_cycles)),
    }
