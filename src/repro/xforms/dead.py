"""Dead Function Elimination on NOELLE (Section 3, "DEAD").

Removes functions that can never run, shrinking the binary (Section 4.5
reports 6.3% average size reduction beyond ``clang -Oz``).  The entire
tool is a handful of lines because NOELLE's call graph is *complete*:
indirect calls are resolved through points-to, so the absence of an edge
really means "cannot be called" — the property LLVM's own call graph
cannot offer (Table 3: 7512 vs 61 LoC).
"""

from __future__ import annotations

from ..core.noelle import Noelle
from ..interp.engine import invalidate_module
from ..ir.module import Function


class DeadFunctionEliminator:
    """The DEAD custom tool."""

    name = "dead"

    def __init__(self, noelle: Noelle, roots: list[str] | None = None):
        self.noelle = noelle
        self.root_names = roots or ["main"]

    def run(self) -> list[str]:
        """Delete unreachable functions; returns their names."""
        module = self.noelle.module
        cg = self.noelle.call_graph()
        if not cg.is_complete():
            return []  # an unresolved call could target anything: bail out
        roots = [
            module.functions[name]
            for name in self.root_names
            if name in module.functions
        ]
        # ISL: whole disconnected islands of the call graph that contain no
        # root are dead as a group — including mutually recursive clusters.
        root_ids = {id(r) for r in roots}
        live_island_members: set[int] = set()
        for island in cg.islands():
            if any(id(fn) in root_ids for fn in island):
                live_island_members.update(id(fn) for fn in island)
        # Within the live islands, functions stored into memory (tables,
        # globals) may be reached via data flow the call graph summarizes;
        # points-to already resolved those into edges, so reachability over
        # CG edges is sound.
        reachable = cg.reachable_from(roots) & live_island_members
        removable = [
            fn
            for fn in module.defined_functions()
            if id(fn) not in reachable
        ]
        removed = []
        for fn in removable:
            if fn.is_used():
                # Referenced by a live global initializer: keep it.
                if self._used_by_live_code(fn, reachable):
                    continue
            removed.append(fn.name)
            module.remove_function(fn.name)
            invalidate_module(module, fn)
        return removed

    def _used_by_live_code(self, fn: Function, reachable: set[int]) -> bool:
        from ..ir.instructions import Instruction

        for use in fn.uses:
            user = use.user
            if isinstance(user, Instruction):
                parent_fn = user.function() if user.parent else None
                if parent_fn is not None and id(parent_fn) in reachable:
                    return True
            else:
                return True  # a global initializer keeps it alive
        return False
