"""The DOALL parallelizing custom tool (Section 3, "DOALL").

Parallelizes loops with no loop-carried data dependences (reductions
allowed) by distributing iterations round-robin across cores.  Built
entirely from NOELLE abstractions: the aSCCDAG decides legality, PDG/ENV
organize the boundary, LB+T generate the task, IV+IVS implement the
iteration chunking, RD handles reductions — the few hundred lines the
paper's Table 3 advertises.
"""

from __future__ import annotations

from .. import ir
from ..core.loop import Loop
from ..core.noelle import Noelle
from .parallelizer_common import (
    LoopBoundary,
    ParallelizationError,
    build_environment,
    chunk_cloned_loop,
    clone_loop_into_task,
    finish_task_with_reductions,
    invocation_is_profitable,
    loop_is_stale,
    replace_loop_with_dispatch,
)

#: Exit predicates compatible with round-robin chunking (a core may step
#: past the bound, so equality tests are unsafe).
CHUNKABLE_PREDICATES = ("slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")


class DOALL:
    """The DOALL technique."""

    name = "doall"

    def __init__(self, noelle: Noelle, default_cores: int = 12):
        self.noelle = noelle
        self.default_cores = default_cores

    # -- selection -----------------------------------------------------------------
    def can_parallelize(self, loop: Loop) -> bool:
        try:
            self._check(loop)
            return True
        except ParallelizationError:
            return False

    def _check(self, loop: Loop) -> LoopBoundary:
        for scc in loop.sccdag.sccs:
            if scc.is_sequential():
                raise ParallelizationError(
                    "loop has a sequential SCC (loop-carried dependence)"
                )
        iv = loop.governing_iv()
        if iv is None:
            raise ParallelizationError("no governing induction variable")
        if iv.constant_step() is None:
            raise ParallelizationError("governing IV has a non-constant step")
        if iv.exit_compare is None or iv.exit_compare.predicate not in (
            CHUNKABLE_PREDICATES
        ):
            raise ParallelizationError("exit condition is not chunkable")
        exiting = loop.structure.exiting_blocks()
        if len(exiting) != 1:
            raise ParallelizationError("loop has multiple exits")
        boundary = LoopBoundary(loop)
        if not boundary.only_reduction_live_outs():
            raise ParallelizationError(
                "loop has live-outs that are not reductions"
            )
        return boundary

    # -- transformation -------------------------------------------------------------
    def parallelize(self, loop: Loop) -> ir.Call:
        """Parallelize ``loop`` in place; returns the dispatch call."""
        boundary = self._check(loop)
        fn = loop.structure.function
        iv = loop.governing_iv()
        env = build_environment(self.noelle, boundary, "doall.env")
        skeleton = clone_loop_into_task(
            self.noelle, boundary, env,
            f"{loop.structure.function.name}.doall.task",
        )
        chunk_cloned_loop(skeleton)
        finish_task_with_reductions(self.noelle, skeleton, boundary, env)
        skeleton.task.function.metadata["noelle.parallel"] = "doall"
        ir.verify_function(skeleton.task.function)
        call = replace_loop_with_dispatch(
            self.noelle, boundary, env, skeleton.task,
            "noelle_dispatch_doall", self.default_cores,
        )
        ir.verify_function(fn)
        return call

    # -- whole-program driver ----------------------------------------------------------
    def run(
        self,
        minimum_hotness: float = 0.0,
        max_rounds: int = 10,
        only_loop_id: int | None = None,
    ) -> int:
        """Parallelize every eligible (hot) loop; returns how many.

        One transformation per function per round (analyses go stale);
        rounds repeat with fresh analyses until nothing changes.
        """
        total = 0
        for _ in range(max_rounds):
            changed = self._run_round(minimum_hotness, only_loop_id)
            total += changed
            if not changed:
                break
            if only_loop_id is not None:
                break  # surgical mode transforms at most one loop
        return total

    def _run_round(
        self, minimum_hotness: float, only_loop_id: int | None = None
    ) -> int:
        parallelized = 0
        transformed_functions: set[int] = set()
        for loop in self.noelle.loops():
            if loop_is_stale(loop):
                continue  # erased by an earlier transformation this round
            if only_loop_id is not None and loop.structure.loop_id != only_loop_id:
                continue  # surgical testing: only the requested loop
            fn = loop.structure.function
            if id(fn) in transformed_functions:
                continue  # loop info of this function is stale now
            if fn.metadata.get("noelle.task"):
                continue  # never re-parallelize generated task bodies
            if any(
                phi.metadata.get("noelle.generated")
                for phi in loop.structure.header.phis()
            ):
                continue  # runtime glue (e.g. reduction combining) stays serial
            profile = self.noelle.profile()
            if profile is not None:
                if profile.loop_hotness(loop.natural_loop) < minimum_hotness:
                    continue
            from ..runtime.machine import FORK_OVERHEAD

            if not invocation_is_profitable(loop, profile, FORK_OVERHEAD):
                continue
            if loop.structure.depth() != 1:
                continue  # parallelize outermost eligible loops only
            if not self.can_parallelize(loop):
                continue
            self.parallelize(loop)
            # Outlining rewrote only this function (plus fresh task code):
            # drop its shard and the aggregates, keep points-to warm.
            self.noelle.invalidate(fn)
            transformed_functions.add(id(fn))
            parallelized += 1
        return parallelized
