"""The DSWP parallelizing custom tool (Section 3, "DSWP").

Decoupled Software Pipelining distributes the *SCCs* of a loop across
cores: every dynamic instance of a given SCC runs on the same core, and
values crossing stage boundaries flow through unidirectional queues
[Ottoni et al., MICRO'05].  Where HELIX slices iterations, DSWP slices the
dependence graph.

Construction (all from NOELLE abstractions):

* the aSCCDAG's topological order gives the pipeline orientation;
* SCCs connected by memory dependences are co-located (queues forward
  registers, not memory);
* the *control skeleton* — terminators, the governing IV, and everything
  the branches need — is replicated in every stage so all stages make
  identical control decisions;
* each remaining SCC group is assigned to a stage balancing cycle load;
* cross-stage register dependences become ``queue_push``/``queue_pop``
  pairs, one queue per (producer, consumer-stage).
"""

from __future__ import annotations

from .. import ir
from ..core.loop import Loop
from ..core.noelle import Noelle
from ..core.sccdag import SCC
from ..ir.intrinsics import declare_intrinsic
from .parallelizer_common import (
    invocation_is_profitable,
    loop_is_stale,
    LoopBoundary,
    ParallelizationError,
    TaskSkeleton,
    build_environment,
    clone_loop_into_task,
    replace_loop_with_dispatch,
)


class DSWP:
    """The DSWP technique."""

    name = "dswp"

    def __init__(self, noelle: Noelle, num_stages: int = 4):
        self.noelle = noelle
        self.num_stages = num_stages

    # -- selection ---------------------------------------------------------------------
    def can_parallelize(self, loop: Loop) -> bool:
        try:
            self._plan(loop)
            return True
        except ParallelizationError:
            return False

    def _plan(self, loop: Loop):
        if len(loop.structure.exiting_blocks()) != 1:
            raise ParallelizationError("loop has multiple exits")
        boundary = LoopBoundary(loop)
        if not boundary.only_reduction_live_outs():
            raise ParallelizationError("loop has non-reduction live-outs")
        sccdag = loop.sccdag
        skeleton = self._control_skeleton(loop)
        for inst in skeleton:
            if inst.touches_memory():
                raise ParallelizationError(
                    "control skeleton touches memory; stages cannot replicate it"
                )
        from ..core.partitioner import SCCDAGPartitioner

        arch = self.noelle.architecture()
        partitioner = SCCDAGPartitioner(
            loop.sccdag, exclude={id(i) for i in skeleton}
        )
        if len(partitioner.colocated_groups()) < 2:
            raise ParallelizationError("fewer than two pipeline stages")
        # The stage count is bounded by the machine (AR): a pipeline deeper
        # than the physical cores would just multiplex.
        stages = partitioner.partition(
            min(self.num_stages, arch.num_physical_cores)
        )
        return boundary, skeleton, stages

    def _control_skeleton(self, loop: Loop) -> list[ir.Instruction]:
        """Terminators plus everything they transitively need in-loop."""
        natural = loop.natural_loop
        needed: dict[int, ir.Instruction] = {}
        worklist: list[ir.Instruction] = []
        for block in natural.blocks:
            term = block.terminator
            if term is not None:
                needed[id(term)] = term
                worklist.append(term)
        while worklist:
            inst = worklist.pop()
            for operand in inst.operands:
                if (
                    isinstance(operand, ir.Instruction)
                    and natural.contains(operand)
                    and id(operand) not in needed
                ):
                    needed[id(operand)] = operand
                    worklist.append(operand)
        # The governing IV's whole SCC rides along (it feeds the exit test).
        iv = loop.governing_iv()
        if iv is not None:
            for inst in [iv.phi, *iv.update_instructions()]:
                if id(inst) not in needed and isinstance(inst, ir.Instruction):
                    needed[id(inst)] = inst
        # Header phis must exist in every stage (they carry the iteration
        # state each stage re-computes).
        for phi in natural.header.phis():
            scc = loop.sccdag.scc_of(phi)
            if scc is not None and scc.is_independent() and scc.is_induction:
                for inst in scc.instructions:
                    needed.setdefault(id(inst), inst)
        return list(needed.values())

    # -- transformation -----------------------------------------------------------------
    def parallelize(self, loop: Loop) -> ir.Call:
        boundary, skeleton, stages = self._plan(loop)
        fn = loop.structure.function
        env = build_environment(self.noelle, boundary, "dswp.env")
        module = self.noelle.module
        stage_fns: list[ir.Function] = []
        queue_counter = [0]
        for stage_index in range(len(stages)):
            stage_fn = self._build_stage(
                boundary, env, skeleton, stages, stage_index, queue_counter
            )
            stage_fns.append(stage_fn)
        selector = self._build_selector(env, stage_fns, fn.name)
        from ..core.task import Task

        task = Task(selector, env)
        call = replace_loop_with_dispatch(
            self.noelle, boundary, env, task, "noelle_dispatch_dswp",
            default_cores=len(stage_fns),
        )
        # DSWP's core count is its stage count, not the machine knob: patch
        # the dispatch to pass the constant stage count.
        call.set_operand(3, ir.const_int(len(stage_fns)))
        ir.verify_function(fn)
        return call

    def _build_stage(
        self,
        boundary: LoopBoundary,
        env,
        skeleton: list[ir.Instruction],
        stages: list[list[ir.Instruction]],
        stage_index: int,
        queue_counter: list[int],
    ) -> ir.Function:
        natural = boundary.natural
        fn_name = boundary.loop.structure.function.name
        task_skeleton = clone_loop_into_task(
            self.noelle, boundary, env,
            f"{fn_name}.dswp.stage{stage_index}",
        )
        task_fn = task_skeleton.task.function
        skeleton_ids = {id(i) for i in skeleton}
        mine = {id(i) for i in stages[stage_index]}
        stage_of: dict[int, int] = {}
        for index, stage in enumerate(stages):
            for inst in stage:
                stage_of[id(inst)] = index

        push_fn = declare_intrinsic(self.noelle.module, "queue_push_i64")
        pop_fn = declare_intrinsic(self.noelle.module, "queue_pop_i64")
        push_f64 = declare_intrinsic(self.noelle.module, "queue_push_f64")
        pop_f64 = declare_intrinsic(self.noelle.module, "queue_pop_f64")

        # Queue ids must be deterministic across stages: derive from the
        # producer's position and the consumer stage.
        order_of: dict[int, int] = {}
        for position, inst in enumerate(natural.instructions()):
            order_of[id(inst)] = position

        def queue_id(producer: ir.Instruction, consumer_stage: int) -> int:
            return order_of[id(producer)] * 64 + consumer_stage

        # Pass 1: pushes for my values consumed elsewhere.
        for inst in natural.instructions():
            if id(inst) not in mine:
                continue
            clone = task_skeleton.clone_of(inst)
            consumer_stages = set()
            for user in inst.users():
                if isinstance(user, ir.Instruction) and natural.contains(user):
                    if id(user) in skeleton_ids:
                        continue  # the skeleton is replicated, never fed
                    user_stage = stage_of.get(id(user))
                    if user_stage is not None and user_stage != stage_index:
                        consumer_stages.add(user_stage)
            for consumer_stage in sorted(consumer_stages):
                self._insert_push(
                    clone, queue_id(inst, consumer_stage), push_fn, push_f64
                )

        # Pass 2: replace other stages' values I consume with pops; erase
        # the rest of their instructions.  Only *kept* users (skeleton or
        # this stage's instructions) count as consumers — clones of other
        # stages' instructions are about to be erased.
        kept_clone_ids: set[int] = set()
        for inst in natural.instructions():
            if id(inst) in skeleton_ids or id(inst) in mine:
                clone = task_skeleton.clone_of(inst)
                if isinstance(clone, ir.Instruction):
                    kept_clone_ids.add(id(clone))
        to_erase: list[ir.Instruction] = []
        for inst in natural.instructions():
            owner = stage_of.get(id(inst))
            if owner is None or owner == stage_index:
                continue
            clone = task_skeleton.clone_of(inst)
            assert isinstance(clone, ir.Instruction)
            consumers_here = [
                u
                for u in clone.users()
                if isinstance(u, ir.Instruction) and id(u) in kept_clone_ids
            ]
            if consumers_here and not clone.type.is_void():
                pop = self._insert_pop(
                    clone, queue_id(inst, stage_index), pop_fn, pop_f64
                )
                for user in consumers_here:
                    for index, operand in enumerate(user.operands):
                        if operand is clone:
                            user.set_operand(index, pop)
            to_erase.append(clone)
        for clone in to_erase:
            if clone.parent is not None:
                if isinstance(clone, ir.Phi):
                    clone.replace_all_uses_with(ir.UndefValue(clone.type))
                clone.erase_from_parent()

        # Reductions owned by this stage store their partials; others just ret.
        self._finish_stage(task_skeleton, boundary, env, stage_of, stage_index)
        ir.verify_function(task_fn)
        return task_fn

    def _insert_push(self, producer: ir.Instruction, qid: int, push_i64, push_f64):
        block = producer.parent
        assert block is not None
        index = block.instructions.index(producer) + 1
        value: ir.Value = producer
        inserts: list[ir.Instruction] = []
        if producer.type.is_float():
            call = ir.Call(push_f64, [ir.const_int(qid), value])
        else:
            if producer.type.is_pointer():
                cast = ir.Cast("ptrtoint", value, ir.I64, "q.cast")
                inserts.append(cast)
                value = cast
            elif producer.type != ir.I64:
                cast = ir.Cast("zext", value, ir.I64, "q.cast")
                inserts.append(cast)
                value = cast
            call = ir.Call(push_i64, [ir.const_int(qid), value])
        inserts.append(call)
        fn = block.parent
        for offset, inst in enumerate(inserts):
            inst.parent = block
            block.instructions.insert(index + offset, inst)
            if fn is not None:
                fn.assign_name(inst)

    def _insert_pop(self, placeholder: ir.Instruction, qid: int, pop_i64, pop_f64):
        """Materialize a pop at the placeholder's position; returns the value."""
        block = placeholder.parent
        assert block is not None
        first_non_phi = block.first_non_phi()
        anchor = (
            first_non_phi
            if isinstance(placeholder, ir.Phi) and first_non_phi is not None
            else placeholder
        )
        index = block.instructions.index(anchor)
        fn = block.parent
        inserts: list[ir.Instruction] = []
        if placeholder.type.is_float():
            pop = ir.Call(pop_f64, [ir.const_int(qid)], "q.pop")
            inserts.append(pop)
            result: ir.Instruction = pop
        else:
            pop = ir.Call(pop_i64, [ir.const_int(qid)], "q.pop")
            inserts.append(pop)
            result = pop
            if placeholder.type.is_pointer():
                cast = ir.Cast("inttoptr", pop, placeholder.type, "q.val")
                inserts.append(cast)
                result = cast
            elif placeholder.type != ir.I64 and placeholder.type.is_integer():
                cast = ir.Cast("trunc", pop, placeholder.type, "q.val")
                inserts.append(cast)
                result = cast
        for offset, inst in enumerate(inserts):
            inst.parent = block
            block.instructions.insert(index + offset, inst)
            if fn is not None:
                fn.assign_name(inst)
        return result

    def _finish_stage(
        self, task_skeleton: TaskSkeleton, boundary: LoopBoundary, env,
        stage_of: dict[int, int], stage_index: int,
    ) -> None:
        task_fn = task_skeleton.task.function
        env_ptr, _, _ = task_fn.args
        builder = ir.IRBuilder(task_skeleton.exit_block)
        for position, reduction in enumerate(boundary.reductions):
            if stage_of.get(id(reduction.phi)) != stage_index:
                continue
            cloned_phi = task_skeleton.clone_of(reduction.phi)
            if not isinstance(cloned_phi, ir.Phi) or cloned_phi.parent is None:
                continue
            for index in range(1, len(cloned_phi.operands), 2):
                if cloned_phi.operands[index] is task_skeleton.entry:
                    cloned_phi.set_operand(
                        index - 1, reduction.identity_constant()
                    )
            field_index = len(boundary.live_ins) + position
            slot = builder.elem_ptr(
                env_ptr,
                [ir.const_int(0), ir.const_int(field_index), ir.const_int(0)],
                f"red.slot{position}",
            )
            source = task_skeleton.clone_of(
                boundary.reduction_exit_source(reduction)
            )
            builder.store(source, slot)
        builder.ret()

    def _build_selector(
        self, env, stage_fns: list[ir.Function], name_hint: str
    ) -> ir.Function:
        """One entry point that switches on the stage id."""
        from ..core.task import make_task_function

        module = self.noelle.module
        selector = make_task_function(module, env, f"{name_hint}.dswp.task")
        selector.metadata["noelle.task"] = True
        selector.metadata["noelle.parallel"] = "dswp"
        for index, stage_fn in enumerate(stage_fns):
            stage_fn.metadata["noelle.parallel"] = "dswp.stage"
            stage_fn.metadata["noelle.dswp.stage"] = index
        env_ptr, stage_id, num_stages = selector.args
        entry = selector.add_block("entry")
        done = selector.add_block("done")
        builder = ir.IRBuilder(done)
        builder.ret()
        blocks = []
        for index, stage_fn in enumerate(stage_fns):
            block = selector.add_block(f"stage{index}")
            builder.position_at_end(block)
            builder.call(stage_fn, [env_ptr, stage_id, num_stages])
            builder.br(done)
            blocks.append(block)
        builder.position_at_end(entry)
        cases = [
            (ir.ConstantInt(ir.I64, index), block)
            for index, block in enumerate(blocks)
        ]
        builder.switch(stage_id, done, cases)
        ir.verify_function(selector)
        return selector

    # -- whole-program driver -------------------------------------------------------------
    def run(
        self,
        minimum_hotness: float = 0.0,
        max_rounds: int = 10,
        only_loop_id: int | None = None,
    ) -> int:
        total = 0
        for _ in range(max_rounds):
            changed = self._run_round(minimum_hotness, only_loop_id)
            total += changed
            if not changed:
                break
            if only_loop_id is not None:
                break  # surgical mode transforms at most one loop
        return total

    def _run_round(
        self, minimum_hotness: float, only_loop_id: int | None = None
    ) -> int:
        parallelized = 0
        transformed: set[int] = set()
        for loop in self.noelle.loops():
            if loop_is_stale(loop):
                continue  # erased by an earlier transformation this round
            if only_loop_id is not None and loop.structure.loop_id != only_loop_id:
                continue  # surgical testing: only the requested loop
            fn = loop.structure.function
            if id(fn) in transformed or fn.metadata.get("noelle.task"):
                continue
            if any(
                phi.metadata.get("noelle.generated")
                for phi in loop.structure.header.phis()
            ):
                continue
            profile = self.noelle.profile()
            if profile is not None:
                if profile.loop_hotness(loop.natural_loop) < minimum_hotness:
                    continue
            from ..runtime.machine import FORK_OVERHEAD

            if not invocation_is_profitable(loop, profile, FORK_OVERHEAD):
                continue
            if loop.structure.depth() != 1:
                continue
            if not self.can_parallelize(loop):
                continue
            self.parallelize(loop)
            # Outlining rewrote only this function (plus fresh stage code):
            # drop its shard and the aggregates, keep points-to warm.
            self.noelle.invalidate(fn)
            transformed.add(id(fn))
            parallelized += 1
        return parallelized
