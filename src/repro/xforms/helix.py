"""The HELIX parallelizing custom tool (Section 3, "HELIX").

HELIX distributes loop *iterations* across cores even when the loop has
loop-carried dependences: the instructions of each sequential SCC are
wrapped into a *sequential segment* whose dynamic instances execute in
iteration order across the cores (enforced with wait/signal), while
everything else overlaps.

The NOELLE abstractions used mirror the paper's Table 4 row: PRO+FR+L for
loop selection, PDG+ENV for the boundary, LB+T for the parallel body,
aSCCDAG+INV+IV+RD to identify what must serialize, SCD to shrink the
sequential segments, IVS for iteration chunking, and AR for the signal
latency in the schedule.
"""

from __future__ import annotations

from .. import ir
from ..core.loop import Loop
from ..core.noelle import Noelle
from ..core.sccdag import SCC
from ..ir.intrinsics import declare_intrinsic
from .doall import CHUNKABLE_PREDICATES
from .parallelizer_common import (
    LoopBoundary,
    ParallelizationError,
    TaskSkeleton,
    build_environment,
    chunk_cloned_loop,
    clone_loop_into_task,
    finish_task_with_reductions,
    invocation_is_profitable,
    loop_is_stale,
    replace_loop_with_dispatch,
)


class HELIX:
    """The HELIX technique."""

    name = "helix"

    def __init__(self, noelle: Noelle, default_cores: int = 12):
        self.noelle = noelle
        self.default_cores = default_cores

    # -- selection ---------------------------------------------------------------------
    def can_parallelize(self, loop: Loop) -> bool:
        try:
            self._check(loop)
            return True
        except ParallelizationError:
            return False

    def _check(self, loop: Loop) -> LoopBoundary:
        iv = loop.governing_iv()
        if iv is None:
            raise ParallelizationError("no governing induction variable")
        if iv.constant_step() is None:
            raise ParallelizationError("governing IV has a non-constant step")
        if iv.exit_compare is None or iv.exit_compare.predicate not in (
            CHUNKABLE_PREDICATES
        ):
            raise ParallelizationError("exit condition is not chunkable")
        if len(loop.structure.exiting_blocks()) != 1:
            raise ParallelizationError("loop has multiple exits")
        # The governing IV itself must not be trapped in a sequential SCC —
        # otherwise iterations cannot be precomputed per core.
        iv_scc = loop.sccdag.scc_of(iv.phi)
        if iv_scc is not None and iv_scc.is_sequential():
            raise ParallelizationError("governing IV is inside a sequential SCC")
        boundary = LoopBoundary(loop)
        if not boundary.only_reduction_live_outs():
            raise ParallelizationError("loop has non-reduction live-outs")
        self._check_segment_profitability(loop)
        return boundary

    def _check_segment_profitability(self, loop: Loop) -> None:
        """AR: sequential segments pay a core-to-core signal per iteration.

        When the whole loop body is barely bigger than one signal latency,
        the cross-core wait chain dominates and the parallelization loses;
        the architecture description supplies the latency.
        """
        from ..interp.interp import INSTRUCTION_COSTS

        sequential = loop.sccdag.sequential_sccs()
        if not sequential:
            return
        latency = self.noelle.architecture().default_latency
        body_cost = sum(
            INSTRUCTION_COSTS.get(i.opcode, 1) for i in loop.structure.instructions()
        )
        segment_cost = sum(
            INSTRUCTION_COSTS.get(i.opcode, 1)
            for scc in sequential
            for i in scc.instructions
        )
        parallel_cost = body_cost - segment_cost
        # The critical path per iteration is segment work plus one signal;
        # the overlappable work must at least cover it, or the cores just
        # queue behind each other.
        if parallel_cost < segment_cost + latency:
            raise ParallelizationError(
                "sequential segments dominate the iteration"
            )

    # -- transformation -----------------------------------------------------------------
    def parallelize(self, loop: Loop) -> ir.Call:
        boundary = self._check(loop)
        fn = loop.structure.function
        iv = loop.governing_iv()
        # Shrink the header first: fewer instructions on the critical path
        # shortens every sequential segment anchored there (SCD).
        self.noelle.loop_scheduler(fn).shrink_header(loop.natural_loop)
        loop.invalidate()
        boundary = self._check(loop)
        iv = loop.governing_iv()
        sequential_sccs = loop.sccdag.sequential_sccs()
        env = build_environment(self.noelle, boundary, "helix.env")
        skeleton = clone_loop_into_task(
            self.noelle, boundary, env, f"{fn.name}.helix.task"
        )
        chunk_cloned_loop(skeleton)
        self._mark_sequential_segments(skeleton, sequential_sccs)
        self._mark_iteration_boundaries(skeleton, boundary)
        finish_task_with_reductions(self.noelle, skeleton, boundary, env)
        task_fn = skeleton.task.function
        task_fn.metadata["noelle.parallel"] = "helix"
        task_fn.metadata["noelle.helix.segments"] = len(sequential_sccs)
        ir.verify_function(task_fn)
        call = replace_loop_with_dispatch(
            self.noelle, boundary, env, skeleton.task,
            "noelle_dispatch_helix", self.default_cores,
        )
        ir.verify_function(fn)
        return call

    # -- sequential segments ---------------------------------------------------------
    def _mark_sequential_segments(
        self, skeleton: TaskSkeleton, sequential_sccs: list[SCC]
    ) -> None:
        """Bracket each sequential SCC's per-block spans with seq markers.

        The markers drive both the runtime's ordering (wait/signal in a
        real machine, cycle attribution in the simulator) and let the
        schedule replay know what must serialize across cores.
        """
        module = self.noelle.module
        begin = declare_intrinsic(module, "helix_seq_begin")
        end = declare_intrinsic(module, "helix_seq_end")
        # DFE: liveness over the task decides how far each per-block span
        # extends — when a segment value is consumed later in the same
        # block, the span stays open until its last local consumer so the
        # cross-core signal is not sent while dependents still compute.
        from ..core.dataflow import liveness

        task_liveness = liveness(skeleton.task.function)
        for segment_id, scc in enumerate(sequential_sccs):
            cloned = [
                skeleton.clone_of(inst)
                for inst in scc.instructions
                if isinstance(skeleton.clone_of(inst), ir.Instruction)
            ]
            by_block: dict[int, list[ir.Instruction]] = {}
            for inst in cloned:
                if inst.parent is not None:
                    by_block.setdefault(id(inst.parent), []).append(inst)
            for members in by_block.values():
                block = members[0].parent
                # Phis execute at block entry for free (cost 0), and
                # markers must never sit between them: only the non-phi
                # members span measurable time.
                timed = [m for m in members if not isinstance(m, ir.Phi)]
                if not timed:
                    continue
                ordered = sorted(timed, key=lambda i: block.instructions.index(i))
                first_inst: ir.Instruction = ordered[0]
                last_inst: ir.Instruction = self._span_end(
                    block, ordered, task_liveness
                )
                if isinstance(last_inst, ir.Phi):
                    last_inst = ordered[-1]
                seg_const = ir.const_int(segment_id)
                begin_call = ir.Call(begin, [seg_const])
                begin_call.parent = block
                block.instructions.insert(
                    block.instructions.index(first_inst), begin_call
                )
                end_call = ir.Call(end, [seg_const])
                end_call.parent = block
                if isinstance(last_inst, ir.TerminatorInst):
                    block.instructions.insert(
                        block.instructions.index(last_inst), end_call
                    )
                else:
                    block.instructions.insert(
                        block.instructions.index(last_inst) + 1, end_call
                    )

    def _span_end(self, block, members, task_liveness) -> ir.Instruction:
        """Last instruction the segment span must cover in this block.

        Starts at the last SCC member; while any member value is consumed
        later in the block (liveness says it flows forward), the span
        extends to that consumer.
        """
        member_ids = {id(m) for m in members}
        last = members[-1]
        last_index = block.instructions.index(last)
        for index in range(last_index + 1, len(block.instructions)):
            candidate = block.instructions[index]
            if isinstance(candidate, ir.TerminatorInst):
                break
            uses_member = any(
                isinstance(op, ir.Instruction) and id(op) in member_ids
                for op in candidate.operands
            )
            if uses_member:
                # Only worth extending when the value stays live here.
                live = task_liveness.in_of(candidate)
                if any(mid in live for mid in member_ids):
                    last = candidate
                    member_ids.add(id(candidate))
        return last

    def _mark_iteration_boundaries(
        self, skeleton: TaskSkeleton, boundary: LoopBoundary
    ) -> None:
        """Insert one ``helix_iter_boundary`` per back-edge traversal."""
        module = self.noelle.module
        marker = declare_intrinsic(module, "helix_iter_boundary")
        for latch in boundary.natural.latches():
            cloned_latch = skeleton.block_map[id(latch)]
            term = cloned_latch.terminator
            call = ir.Call(marker, [])
            call.parent = cloned_latch
            cloned_latch.instructions.insert(
                cloned_latch.instructions.index(term), call
            )

    # -- whole-program driver -------------------------------------------------------------
    def run(
        self,
        minimum_hotness: float = 0.0,
        max_rounds: int = 10,
        only_loop_id: int | None = None,
    ) -> int:
        total = 0
        for _ in range(max_rounds):
            changed = self._run_round(minimum_hotness, only_loop_id)
            total += changed
            if not changed:
                break
            if only_loop_id is not None:
                break  # surgical mode transforms at most one loop
        return total

    def _run_round(
        self, minimum_hotness: float, only_loop_id: int | None = None
    ) -> int:
        parallelized = 0
        transformed: set[int] = set()
        for loop in self.noelle.loops():
            if loop_is_stale(loop):
                continue  # erased by an earlier transformation this round
            if only_loop_id is not None and loop.structure.loop_id != only_loop_id:
                continue  # surgical testing: only the requested loop
            fn = loop.structure.function
            if id(fn) in transformed or fn.metadata.get("noelle.task"):
                continue
            if any(
                phi.metadata.get("noelle.generated")
                for phi in loop.structure.header.phis()
            ):
                continue
            profile = self.noelle.profile()
            if profile is not None:
                if profile.loop_hotness(loop.natural_loop) < minimum_hotness:
                    continue
            from ..runtime.machine import FORK_OVERHEAD

            if not invocation_is_profitable(loop, profile, FORK_OVERHEAD):
                continue
            if loop.structure.depth() != 1:
                continue
            if not self.can_parallelize(loop):
                continue
            self.parallelize(loop)
            # Outlining rewrote only this function (plus fresh task code):
            # drop its shard and the aggregates, keep points-to warm.
            self.noelle.invalidate(fn)
            transformed.add(id(fn))
            parallelized += 1
        return parallelized
