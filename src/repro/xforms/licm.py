"""Loop Invariant Code Motion on NOELLE (Section 3, "LICM").

The whole tool is a few dozen lines because the three hard parts are
NOELLE abstractions: the loop forest (FR) orders the work from innermost
to outermost loops, the invariant manager (INV, Algorithm 2) decides what
may move, and the loop builder (LB) performs the hoist.  Compare with
:mod:`repro.baselines.licm_llvm`, which re-derives all of it from
low-level facilities (Table 3: 2317 vs 170 LoC; Figure 4: fewer
invariants found).
"""

from __future__ import annotations

from ..core.noelle import Noelle
from ..ir.instructions import Instruction


class LICM:
    """The NOELLE-based LICM custom tool."""

    name = "licm"

    def __init__(self, noelle: Noelle):
        self.noelle = noelle

    def run(self) -> int:
        """Hoist invariants in every loop of the program; returns count."""
        hoisted = 0
        for fn in list(self.noelle.module.defined_functions()):
            hoisted += self.run_on_function(fn)
        return hoisted

    def run_on_function(self, fn) -> int:
        hoisted = 0
        changed = True
        while changed:
            changed = False
            forest = self.noelle.loop_forest(fn)
            lb = self.noelle.loop_builder(fn)
            # Innermost first: hoisting bubbles invariants outward through
            # enclosing loops on later forest nodes.
            for node in forest.bottom_up():
                loop = node.value
                for inst in self._hoistable(loop):
                    lb.hoist_to_pre_header(loop.natural_loop, inst)
                    hoisted += 1
                    changed = True
            if changed:
                # Hoisting rewrites only this function: drop its PDG shard
                # and loop info, keep the whole-module analyses warm.
                self.noelle.invalidate(fn)
        return hoisted

    def _hoistable(self, loop) -> list[Instruction]:
        invariants = loop.invariants.invariants()
        # INV already guarantees every dependence is satisfied outside the
        # loop; only speculation safety remains (traps must not be
        # introduced on the zero-iteration path).
        return [i for i in invariants if i.opcode not in ("sdiv", "srem", "load")
                or self._runs_every_iteration(loop, i)]

    def _runs_every_iteration(self, loop, inst: Instruction) -> bool:
        dom = self.noelle.dominators(loop.structure.function)
        return all(
            latch.terminator is not None and dom.dominates(inst, latch.terminator)
            for latch in loop.structure.latches()
        )
