"""Shared machinery of the parallelizing custom tools (DOALL/HELIX/DSWP).

All three techniques share the same skeleton, built entirely from NOELLE
abstractions:

1. pick a loop (PRO + L decide profitability; the tool decides legality
   from the aSCCDAG);
2. compute the loop's live-ins/live-outs (PDG) and lay them out in an
   environment (ENV);
3. clone the loop body into a task function (LB + T), remapping live-ins
   to environment loads;
4. rewrite the original function to populate the environment, call the
   runtime dispatcher, combine the live-outs, and branch past the loop.

The pieces that differ per technique (iteration scheduling, sequential
segments, queues) live in the technique modules.
"""

from __future__ import annotations

from .. import ir
from ..core.environment import Environment
from ..core.loop import Loop
from ..core.loopbuilder import LoopBuilder
from ..core.noelle import Noelle
from ..core.reduction import ReductionDescriptor
from ..core.task import Task, make_task_function
from ..ir.intrinsics import declare_intrinsic

#: Upper bound on cores a parallelized binary supports (partial-result
#: array sizing); the paper's platform has 24 logical cores.
MAX_CORES = 64

NUM_CORES_GLOBAL = "noelle.num_cores"


class ParallelizationError(Exception):
    """The loop cannot be parallelized by this technique."""


class LoopBoundary:
    """The legality-checked boundary of a parallelizable loop."""

    def __init__(self, loop: Loop):
        self.loop = loop
        self.natural = loop.natural_loop
        self.reductions: list[ReductionDescriptor] = loop.reductions()
        reduction_values: set[int] = set()
        for reduction in self.reductions:
            reduction_values.add(id(reduction.phi))
            reduction_values.add(id(reduction.exit_value()))
        self.live_ins = loop.live_ins()
        self.live_outs = loop.live_outs()
        self.non_reduction_live_outs = [
            v for v in self.live_outs if id(v) not in reduction_values
        ]

    def only_reduction_live_outs(self) -> bool:
        return not self.non_reduction_live_outs

    def reduction_exit_source(self, reduction: ReductionDescriptor):
        """The value holding the accumulated total on the loop's exit edge.

        Test-first loops (``for``/``while``) exit from the header before
        the final iteration's update runs, so the total is the reduction
        phi.  Test-last loops (``do-while``) take the exit branch *after*
        the update — including the single-block case where the header is
        also the exiting block — so the total is the latch-incoming
        update; storing the phi there would drop the last iteration's
        contribution.
        """
        update = reduction.exit_value()
        header = reduction.phi.parent
        for block in self.natural.blocks:
            term = block.terminator
            if term is None or not any(
                not self.natural.contains_block(succ)
                for succ in term.successors()
            ):
                continue
            # The exit edge leaves `block`.  The update has already run
            # on this iteration unless the exit leaves the header while
            # the update sits in a later block.
            if block is header and update.parent is not block:
                return reduction.phi
            return update
        return reduction.phi


def num_cores_global(module: ir.Module, default: int = 12) -> ir.GlobalVariable:
    """The runtime-tunable core-count knob read by parallelized code."""
    existing = module.globals.get(NUM_CORES_GLOBAL)
    if existing is not None:
        return existing
    return module.add_global(
        NUM_CORES_GLOBAL, ir.I64, ir.ConstantInt(ir.I64, default)
    )


def build_environment(
    noelle: Noelle, boundary: LoopBoundary, name_hint: str
) -> Environment:
    """Environment layout: one field per live-in, then one
    ``[MAX_CORES x T]`` array per reduction for the partial results."""
    module = noelle.module
    fields = [v.type for v in boundary.live_ins]
    for reduction in boundary.reductions:
        fields.append(ir.ArrayType(reduction.phi.type, MAX_CORES))
    index = 0
    struct_name = name_hint
    while struct_name in module.structs:
        index += 1
        struct_name = f"{name_hint}{index}"
    struct = module.add_struct(struct_name, fields)
    env = Environment(struct, boundary.live_ins, [r.phi for r in boundary.reductions])
    return env


class TaskSkeleton:
    """The cloned loop inside a fresh task function."""

    def __init__(
        self,
        task: Task,
        value_map: dict[int, ir.Value],
        block_map: dict[int, ir.BasicBlock],
        entry: ir.BasicBlock,
        exit_block: ir.BasicBlock,
    ):
        self.task = task
        self.value_map = value_map
        self.block_map = block_map
        self.entry = entry
        self.exit_block = exit_block

    def clone_of(self, value: ir.Value) -> ir.Value:
        return self.value_map.get(id(value), value)


def clone_loop_into_task(
    noelle: Noelle,
    boundary: LoopBoundary,
    env: Environment,
    name_hint: str,
) -> TaskSkeleton:
    """Create the task function and clone the loop body into it.

    Live-ins are loaded from the environment in the task entry; every loop
    exit is retargeted to a shared task exit block (which the caller
    populates with live-out stores before the ``ret``).
    """
    module = noelle.module
    task_fn = make_task_function(module, env, name_hint)
    task_fn.metadata["noelle.task"] = True
    task = Task(task_fn, env)
    entry = task_fn.add_block("task.entry")
    builder = ir.IRBuilder(entry)
    env_ptr = task_fn.args[0]
    value_map: dict[int, ir.Value] = {}
    envb = noelle.environment_builder()
    for live_in in boundary.live_ins:
        value_map[id(live_in)] = envb.load_field(
            builder, env, env_ptr, live_in, f"livein.{live_in.name or 'v'}"
        )
    lb = LoopBuilder(task_fn)
    natural = boundary.natural
    block_map = lb.clone_blocks_into(task_fn, natural.blocks, value_map, "task")
    task.clones = {
        key: value
        for key, value in value_map.items()
        if isinstance(value, ir.Instruction)
    }
    # Wire the entry edges of the cloned header phis.
    cloned_header = block_map[id(natural.header)]
    for phi in natural.header.phis():
        cloned_phi = value_map[id(phi)]
        assert isinstance(cloned_phi, ir.Phi)
        for value, pred in phi.incoming():
            if not natural.contains_block(pred):
                cloned_phi.add_incoming(value_map.get(id(value), value), entry)
    builder.br(cloned_header)
    # Retarget loop exits to one shared task exit.
    exit_block = task_fn.add_block("task.exit")
    cloned_ids = {id(b) for b in block_map.values()}
    for block in natural.blocks:
        term = block_map[id(block)].terminator
        assert term is not None
        for succ in list(term.successors()):
            if id(succ) not in cloned_ids:
                term.replace_successor(succ, exit_block)
    return TaskSkeleton(task, value_map, block_map, entry, exit_block)


def finish_task_with_reductions(
    noelle: Noelle,
    skeleton: TaskSkeleton,
    boundary: LoopBoundary,
    env: Environment,
) -> None:
    """Per-core reduction plumbing inside the task.

    The cloned accumulator phi starts at the operator's identity; the final
    per-core value is stored into this core's slot of the environment's
    partial-result array.
    """
    task_fn = skeleton.task.function
    env_ptr, core_id, _ = task_fn.args
    builder = ir.IRBuilder(skeleton.exit_block)
    for position, reduction in enumerate(boundary.reductions):
        cloned_phi = skeleton.clone_of(reduction.phi)
        assert isinstance(cloned_phi, ir.Phi)
        # Entry value becomes the identity.
        for index in range(1, len(cloned_phi.operands), 2):
            if cloned_phi.operands[index] is skeleton.entry:
                cloned_phi.set_operand(index - 1, reduction.identity_constant())
        field_index = len(boundary.live_ins) + position
        slot = builder.elem_ptr(
            env_ptr,
            [ir.const_int(0), ir.const_int(field_index), core_id],
            f"red.slot{position}",
        )
        builder.store(
            skeleton.clone_of(boundary.reduction_exit_source(reduction)), slot
        )
    builder.ret()


def replace_loop_with_dispatch(
    noelle: Noelle,
    boundary: LoopBoundary,
    env: Environment,
    task: Task,
    dispatcher_name: str,
    default_cores: int = 12,
) -> ir.Call:
    """Rewrite the original function: env setup, dispatch, combine, branch.

    Requires a single dedicated exit block.  Returns the dispatch call.
    """
    loop = boundary.loop
    natural = boundary.natural
    fn = loop.structure.function
    module = noelle.module
    lb = LoopBuilder(fn)
    pre = lb.ensure_pre_header(natural)
    lb.ensure_dedicated_exits(natural)
    exit_blocks = natural.exit_blocks()
    if len(exit_blocks) != 1:
        raise ParallelizationError("loop must have a single exit block")
    exit_block = exit_blocks[0]

    pre.terminator.erase_from_parent()
    builder = ir.IRBuilder(pre)
    envb = noelle.environment_builder()
    env_ptr = envb.allocate(builder, env)
    envb.store_live_ins(builder, env, env_ptr)
    cores_gv = num_cores_global(module, default_cores)
    num_cores = builder.load(cores_gv, "ncores")

    # Initialize every per-core partial-result slot to the reduction's
    # identity: a scheduler may hand fewer cores than requested (HELIX's
    # in-order replay uses one), and unwritten slots must be neutral.
    if boundary.reductions:
        init_header = fn.add_block("red.init")
        init_body = fn.add_block("red.init.body")
        init_done = fn.add_block("red.init.done")
        builder.br(init_header)
        builder.position_at_end(init_header)
        init_phi = builder.phi(ir.I64, "red.init.core")
        init_phi.metadata["noelle.generated"] = True
        init_test = builder.icmp("sge", init_phi, num_cores, "red.init.done.test")
        builder.cond_br(init_test, init_done, init_body)
        builder.position_at_end(init_body)
        for position, reduction in enumerate(boundary.reductions):
            field_index = len(boundary.live_ins) + position
            slot = builder.elem_ptr(
                env_ptr,
                [ir.const_int(0), ir.const_int(field_index), init_phi],
                f"red.init.slot{position}",
            )
            builder.store(reduction.identity_constant(), slot)
        init_next = builder.add(init_phi, ir.const_int(1), "red.init.next")
        builder.br(init_header)
        init_phi.add_incoming(ir.const_int(0), pre)
        init_phi.add_incoming(init_next, init_body)
        builder.position_at_end(init_done)
        dispatch_block = init_done
    else:
        dispatch_block = pre

    dispatcher = declare_intrinsic(module, dispatcher_name)
    dispatch_call = builder.call(dispatcher, [task.function, env_ptr, num_cores])

    # Combine the per-core partial results with a small runtime loop.
    combined: dict[int, ir.Value] = {}
    if boundary.reductions:
        combine_header = fn.add_block("red.combine")
        combine_body = fn.add_block("red.combine.body")
        combine_done = fn.add_block("red.combine.done")
        builder.br(combine_header)
        builder.position_at_end(combine_header)
        core_phi = builder.phi(ir.I64, "red.core")
        core_phi.metadata["noelle.generated"] = True
        acc_phis: list[ir.Phi] = []
        for position, reduction in enumerate(boundary.reductions):
            acc = builder.phi(reduction.phi.type, f"red.acc{position}")
            acc_phis.append(acc)
        done = builder.icmp("sge", core_phi, num_cores, "red.done")
        builder.cond_br(done, combine_done, combine_body)
        builder.position_at_end(combine_body)
        next_accs: list[ir.Value] = []
        for position, reduction in enumerate(boundary.reductions):
            field_index = len(boundary.live_ins) + position
            slot = builder.elem_ptr(
                env_ptr,
                [ir.const_int(0), ir.const_int(field_index), core_phi],
                f"red.read{position}",
            )
            partial = builder.load(slot, f"red.part{position}")
            next_accs.append(
                builder.binary(reduction.operator, acc_phis[position], partial,
                               f"red.next{position}")
            )
        next_core = builder.add(core_phi, ir.const_int(1), "red.core.next")
        builder.br(combine_header)
        core_phi.add_incoming(ir.const_int(0), dispatch_block)
        core_phi.add_incoming(next_core, combine_body)
        for position, reduction in enumerate(boundary.reductions):
            acc_phis[position].add_incoming(reduction.initial_value(), dispatch_block)
            acc_phis[position].add_incoming(next_accs[position], combine_body)
        builder.position_at_end(combine_done)
        for position, reduction in enumerate(boundary.reductions):
            combined[id(reduction.phi)] = acc_phis[position]
            combined[id(reduction.exit_value())] = acc_phis[position]
        final_block = combine_done
    else:
        final_block = pre
    builder.br(exit_block)

    _rewire_after_loop(boundary, combined, exit_block, final_block)
    for block in list(natural.blocks):
        block.erase()
    return dispatch_call


def _rewire_after_loop(
    boundary: LoopBoundary,
    combined: dict[int, ir.Value],
    exit_block: ir.BasicBlock,
    new_pred: ir.BasicBlock,
) -> None:
    """Point every post-loop consumer at the combined values."""
    natural = boundary.natural
    # Replace uses of loop-defined values outside the loop.
    for inst in list(natural.instructions()):
        replacement = combined.get(id(inst))
        for use in list(inst.uses):
            user = use.user
            if isinstance(user, ir.Instruction) and not natural.contains(user):
                if replacement is None:
                    raise ParallelizationError(
                        f"live-out {inst.ref()} has no combined replacement"
                    )
                user.set_operand(use.index, replacement)
    # Exit phis: collapse the loop edges into one edge from the dispatcher.
    for phi in list(exit_block.phis()):
        incoming_value: ir.Value | None = None
        for value, pred in list(phi.incoming()):
            if natural.contains_block(pred):
                incoming_value = value
                phi.remove_incoming(pred)
        if incoming_value is not None:
            phi.add_incoming(incoming_value, new_pred)


def chunk_cloned_loop(skeleton: "TaskSkeleton") -> None:
    """Round-robin iteration chunking of the cloned loop via IV + IVS.

    Re-detects the governing induction variable *inside the task* (the
    clone is a proper natural loop there) and applies the IV stepper's
    chunking recipe: start += core_id * step, step *= num_cores.
    """
    from ..analysis.loopinfo import LoopInfo
    from ..core.induction import InductionVariableManager
    from ..core.ivstepper import InductionVariableStepper

    task_fn = skeleton.task.function
    _, core_id, num_cores = task_fn.args
    loops = LoopInfo(task_fn).loops()
    cloned_loops = [l for l in loops if l.depth() == 1]
    if len(cloned_loops) != 1:
        raise ParallelizationError("task body is not a single loop")
    iv_manager = InductionVariableManager(cloned_loops[0])
    governing = iv_manager.governing_iv()
    if governing is None:
        raise ParallelizationError("cloned loop lost its governing IV")
    stepper = InductionVariableStepper(governing)
    builder = ir.IRBuilder()
    builder.position_before(skeleton.entry.terminator)
    stepper.chunk_for_core(builder, core_id, num_cores)


def loop_is_stale(loop: Loop) -> bool:
    """True when a transformation already deleted this loop's blocks."""
    return loop.structure.header.parent is None


def invocation_is_profitable(loop: Loop, profile, overhead_cycles: int) -> bool:
    """Does one loop invocation amortize the parallel-region overhead?

    Parallelizing a loop that runs for less than a few fork/join costs per
    invocation is a loss no matter how hot it is in aggregate (e.g. a tiny
    inner loop called thousands of times).  Without a profile the answer
    is optimistic (the paper's tools also default to transforming).
    """
    if profile is None:
        return True
    natural = loop.natural_loop
    invocations = profile.loop_invocations(natural)
    if invocations == 0:
        return True  # never observed: nothing to lose
    weight = profile.inclusive_weight_of_instructions(list(natural.instructions()))
    per_invocation = weight / invocations
    return per_invocation >= 2.0 * overhead_cycles
