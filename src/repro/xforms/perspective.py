"""Perspective on NOELLE (Section 3, "Perspective").

Perspective (Apostolakis et al. [ASPLOS'20]) is a *speculative* DOALL
parallelizer that minimizes speculation and privatization costs: instead
of blanket memory speculation, it plans the cheapest set of "remedies"
that make a loop DOALL — dropping may-dependences the profile says never
manifest, paying a per-access validation cost only where needed.

The paper's port (Table 3, "PERS") replaced Perspective's in-house PDG
and SCC machinery with NOELLE's abstractions while keeping the planner
tool-specific — hence the modest 33.2% LoC reduction compared to the >90%
of the simpler tools.  This module mirrors that split: the *planner*
(remedy selection) is local code; the dependence facts, SCCs, boundary,
task generation, and dispatch all come from the NOELLE layer.
"""

from __future__ import annotations

from ..core.loop import Loop
from ..core.noelle import Noelle
from ..core.profiler import ProfileData
from .. import ir
from ..ir.intrinsics import declare_intrinsic
from .doall import DOALL
from .parallelizer_common import (
    LoopBoundary,
    ParallelizationError,
    loop_is_stale,
)


class Remedy:
    """One planned remedy for a blocking dependence."""

    SPECULATE = "speculate"  # drop the dep; validate accesses at runtime

    def __init__(self, kind: str, edge, cost: int):
        self.kind = kind
        self.edge = edge
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<remedy {self.kind} cost={self.cost}>"


class Perspective:
    """Speculative DOALL with minimal-cost remedy planning."""

    name = "perspective"

    #: Per-iteration validation cost of one speculated access (cycles).
    VALIDATION_COST = 6

    def __init__(self, noelle: Noelle, default_cores: int = 12):
        self.noelle = noelle
        self.default_cores = default_cores
        self._doall = DOALL(noelle, default_cores)

    # -- planning ------------------------------------------------------------------------
    def plan(self, loop: Loop) -> list[Remedy] | None:
        """The cheapest remedy set making ``loop`` DOALL, or None.

        Only *apparent* (may) dependences can be speculated away, and only
        when the profile never observed them manifest; *actual* (must)
        dependences are real and kill the plan (unless they form a
        reduction, which DOALL handles natively).
        """
        remedies: list[Remedy] = []
        for scc in loop.sccdag.sccs:
            if not scc.is_sequential():
                continue
            for edge in scc.carried_edges:
                if not edge.is_memory:
                    return None  # a register recurrence cannot be speculated
                if edge.is_must:
                    return None  # a proven dependence would misspeculate
                remedies.append(
                    Remedy(Remedy.SPECULATE, edge, self.VALIDATION_COST)
                )
        if not remedies:
            return None  # nothing to speculate: plain DOALL already works
        return remedies

    def expected_benefit(self, loop: Loop, profile: ProfileData | None) -> bool:
        """Is the remedy cost worth it?  (The Perspective planner's check.)"""
        remedies = self.plan(loop)
        if remedies is None:
            return False
        validation = sum(r.cost for r in remedies)
        body_cost = loop.structure.num_instructions()
        return validation < body_cost  # rough per-iteration comparison

    # -- transformation ---------------------------------------------------------------------
    def can_parallelize(self, loop: Loop) -> bool:
        remedies = self.plan(loop)
        if remedies is None:
            return False
        return self._doall_after_speculation_ok(loop, remedies)

    def _doall_after_speculation_ok(self, loop: Loop, remedies) -> bool:
        speculated = {id(r.edge) for r in remedies}
        for scc in loop.sccdag.sccs:
            if scc.is_sequential():
                remaining = [
                    e for e in scc.carried_edges if id(e) not in speculated
                ]
                if remaining:
                    return False
        iv = loop.governing_iv()
        if iv is None or iv.constant_step() is None or iv.exit_compare is None:
            return False
        if len(loop.structure.exiting_blocks()) != 1:
            return False
        try:
            boundary = LoopBoundary(loop)
        except Exception:
            return False
        return boundary.only_reduction_live_outs()

    def parallelize(self, loop: Loop) -> ir.Call:
        """Apply the plan: validate speculated accesses, then DOALL."""
        remedies = self.plan(loop)
        if remedies is None or not self._doall_after_speculation_ok(loop, remedies):
            raise ParallelizationError("no profitable speculative plan")
        # Runtime validation: each speculated access gets a validation call
        # (the misspeculation detector's footprint — cost, not recovery;
        # recovery needs checkpointing the paper delegates to its runtime).
        validator = declare_intrinsic(self.noelle.module, "carat_guard")
        instrumented: set[int] = set()
        for remedy in remedies:
            for inst in (remedy.edge.src.value, remedy.edge.dst.value):
                if id(inst) in instrumented:
                    continue
                pointer = self._pointer_of(inst)
                if pointer is None:
                    continue
                instrumented.add(id(inst))
                self._instrument(validator, inst, pointer)
        # Neutralize the speculated edges so DOALL's legality accepts.
        for remedy in remedies:
            scc = loop.sccdag.scc_of(remedy.edge.dst.value)
            if scc is not None and remedy.edge in scc.carried_edges:
                scc.carried_edges.remove(remedy.edge)
        for scc in loop.sccdag.sccs:
            if scc.is_sequential() and not scc.carried_edges:
                scc.category = scc.INDEPENDENT
        return self._doall.parallelize(loop)

    @staticmethod
    def _pointer_of(inst: ir.Instruction) -> ir.Value | None:
        if isinstance(inst, ir.Load):
            return inst.pointer
        if isinstance(inst, ir.Store):
            return inst.pointer
        return None

    def _instrument(
        self, validator: ir.Function, inst: ir.Instruction, pointer: ir.Value
    ) -> None:
        block = inst.parent
        assert block is not None
        position = block.instructions.index(inst)
        cast = ir.Cast("bitcast", pointer, ir.PointerType(ir.I8), "spec.ptr")
        call = ir.Call(
            validator, [cast, ir.const_int(pointer.type.pointee.size_in_slots())]
        )
        fn = block.parent
        for offset, new_inst in enumerate((cast, call)):
            new_inst.parent = block
            block.instructions.insert(position + offset, new_inst)
            if fn is not None:
                fn.assign_name(new_inst)

    # -- driver ---------------------------------------------------------------------------
    def run(self, max_rounds: int = 5) -> int:
        total = 0
        for _ in range(max_rounds):
            changed = 0
            for loop in self.noelle.loops():
                if loop_is_stale(loop):
                    continue
                fn = loop.structure.function
                if fn.metadata.get("noelle.task"):
                    continue
                if any(
                    phi.metadata.get("noelle.generated")
                    for phi in loop.structure.header.phis()
                ):
                    continue
                if loop.structure.depth() != 1:
                    continue
                if not self.can_parallelize(loop):
                    continue
                if not self.expected_benefit(loop, self.noelle.profile()):
                    continue
                self.parallelize(loop)
                # Only this function changed: per-function invalidation
                # keeps points-to and untouched shards warm for the rescan.
                self.noelle.invalidate(fn)
                changed += 1
                break  # analyses stale: restart the scan
            total += changed
            if not changed:
                break
        return total
