"""PRVJeeves on NOELLE (Section 3, "PRVJeeves").

Selects the pseudo-random value generator (PRVG) per use site of a
randomized program (Leonard & Campanoni [CGO'20]).  Generators trade
statistical quality for speed; the tool keeps the expensive, high-quality
generator only where the program's *use* of the random value demands it.

NOELLE abstractions used (Table 4 row "PRVJ"): PDG+CG+DFE find the PRVG
allocations and uses and the data flow from generator to consumer, PRO
prunes the design space to hot call sites, L+LB+INV+IV recognize uses
inside loops (the hot case), and SCD places the rewritten uses.
"""

from __future__ import annotations

from ..core.noelle import Noelle
from ..interp.engine import invalidate_module
from .. import ir
from ..ir.intrinsics import declare_intrinsic

#: The design space: generator name -> (cost rank, quality rank).
#: Lower cost is faster; higher quality passes more statistical tests.
GENERATORS = {
    "rand_lcg": (1, 1),
    "rand_xorshift": (2, 2),
    "rand_pcg": (3, 3),
    "rand_mt": (4, 4),
}

#: The program's default generator (libc ``rand``) and its quality.
DEFAULT_GENERATOR = "rand"
DEFAULT_QUALITY = 4


class PRVJeeves:
    """The PRVG-selection custom tool."""

    name = "prvjeeves"

    def __init__(self, noelle: Noelle, hotness_threshold: float = 0.01):
        self.noelle = noelle
        #: Call sites colder than this fraction of the run are left alone
        #: (PRO prunes the design space).
        self.hotness_threshold = hotness_threshold

    def run(self) -> dict[str, int]:
        """Re-select generators; returns {generator name: sites}."""
        module = self.noelle.module
        profile = self.noelle.profile()
        pdg = self.noelle.pdg()
        selected: dict[str, int] = {}
        for fn in list(module.defined_functions()):
            for inst in list(fn.instructions()):
                if not isinstance(inst, ir.Call):
                    continue
                callee = inst.called_function()
                if callee is None or callee.name != DEFAULT_GENERATOR:
                    continue
                if profile is not None and profile.total_weight > 0:
                    hotness = profile.hotness([inst])
                    if hotness < self.hotness_threshold:
                        continue  # cold: not worth the risk or the churn
                quality = self._required_quality(inst, pdg)
                generator = self._cheapest_with_quality(quality)
                if generator == DEFAULT_GENERATOR:
                    continue
                replacement = declare_intrinsic(module, generator)
                inst.set_operand(0, replacement)
                selected[generator] = selected.get(generator, 0) + 1
            invalidate_module(module, fn)
        return selected

    # -- quality requirements ----------------------------------------------------------
    def _required_quality(self, call: ir.Call, pdg) -> int:
        """How statistically demanding are this value's consumers?

        The PDG walk classifies the use sites the paper distinguishes:
        values feeding floating-point mathematics (Monte-Carlo estimation)
        need a high-quality generator; values feeding cheap integer
        decisions (hash seeds, branching, array shuffling) tolerate a
        fast one.
        """
        demand = 1
        worklist: list[ir.Instruction] = [call]
        seen: set[int] = set()
        depth = 0
        while worklist and depth < 10_000:
            depth += 1
            inst = worklist.pop()
            if id(inst) in seen:
                continue
            seen.add(id(inst))
            for edge in pdg.dependents_of(inst):
                consumer = edge.dst.value
                if not isinstance(consumer, ir.Instruction):
                    continue
                if isinstance(consumer, ir.Cast) and consumer.opcode == "sitofp":
                    demand = max(demand, 3)
                if consumer.opcode in ("fmul", "fdiv", "fadd", "fsub"):
                    demand = max(demand, 3)
                if isinstance(consumer, ir.Call):
                    target = consumer.called_function()
                    if target is not None and target.name in (
                        "sqrt", "exp", "log", "pow", "sin", "cos",
                    ):
                        demand = max(demand, 4)
                if consumer.opcode in ("srem", "and"):
                    demand = max(demand, 1)
                worklist.append(consumer)
        return demand

    @staticmethod
    def _cheapest_with_quality(quality: int) -> str:
        candidates = [
            (cost, name)
            for name, (cost, q) in GENERATORS.items()
            if q >= quality
        ]
        if not candidates:
            return DEFAULT_GENERATOR
        return min(candidates)[1]
