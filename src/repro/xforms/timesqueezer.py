"""Time-Squeezer on NOELLE (Section 3, "Time-Squeezer").

Generates code for *timing-speculative* micro-architectures (Fan et al.
[ISCA'19, DAC'18]): hardware that runs at a clock period shorter than the
worst-case path and relies on the compiler to (1) canonicalize compare
instructions so their critical operand arrives early, (2) schedule
instruction sequences to group operations tolerating the same clock
period, and (3) inject instructions that change the clock period at
region boundaries.

NOELLE abstractions used (Table 4 row "TIME"): ISL + PDG analyze the
compare instructions and their dependence slices, DFE + L + FR decide
where clock-changing instructions go (per loop region, innermost first),
and SCD re-schedules each region's instruction sequence.
"""

from __future__ import annotations

from ..core.islands import dependence_graph_islands
from ..core.noelle import Noelle
from ..interp.engine import invalidate_module
from .. import ir
from ..ir.intrinsics import declare_intrinsic

#: Clock periods (abstract time units per cycle): aggressive vs safe.
FAST_CLOCK = 8
SLOW_CLOCK = 10

#: Opcodes whose circuit paths are short enough for the fast clock.
FAST_OPS = frozenset({
    "add", "sub", "and", "or", "xor", "shl", "ashr", "lshr", "icmp",
    "br", "cond_br", "phi", "select", "trunc", "zext", "sext", "bitcast",
    "elem_ptr", "ret",
})


class TimeSqueezerStats:
    def __init__(self) -> None:
        self.compares_swapped = 0
        self.blocks_rescheduled = 0
        self.clock_changes_inserted = 0
        self.fast_regions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TIME swapped={self.compares_swapped} "
            f"rescheduled={self.blocks_rescheduled} "
            f"clock-changes={self.clock_changes_inserted}>"
        )


class TimeSqueezer:
    """The TIME custom tool."""

    name = "time-squeezer"

    def __init__(self, noelle: Noelle):
        self.noelle = noelle

    def run(self) -> TimeSqueezerStats:
        stats = TimeSqueezerStats()
        for fn in list(self.noelle.module.defined_functions()):
            if fn.metadata.get("noelle.task"):
                continue
            self.run_on_function(fn, stats)
            invalidate_module(self.noelle.module, fn)
        return stats

    def run_on_function(self, fn: ir.Function, stats: TimeSqueezerStats) -> None:
        self._canonicalize_compares(fn, stats)
        self._schedule_for_clock(fn, stats)
        self._inject_clock_changes(fn, stats)

    # -- (1) compare canonicalization ---------------------------------------------------
    def _canonicalize_compares(self, fn: ir.Function, stats: TimeSqueezerStats) -> None:
        """Swap compare operands so the late-arriving one is on the left.

        On the timing-speculative datapath the left operand feeds the
        critical comparator input; putting the deeper computation there
        gives the hardware the most slack.  ISL over the PDG slice of the
        compares tells which compares share dependences (and must agree).
        """
        pdg = self.noelle.pdg()
        compares = [
            inst for inst in fn.instructions() if isinstance(inst, ir.CmpInst)
        ]
        if not compares:
            return
        slice_graph = pdg.subgraph(compares)
        for island in dependence_graph_islands(slice_graph):
            for compare in island:
                if not isinstance(compare, ir.CmpInst):
                    continue
                lhs_depth = self._operand_depth(compare.lhs)
                rhs_depth = self._operand_depth(compare.rhs)
                if rhs_depth > lhs_depth:
                    compare.swap_operands()
                    stats.compares_swapped += 1

    def _operand_depth(self, value: ir.Value, limit: int = 12) -> int:
        if not isinstance(value, ir.Instruction) or limit == 0:
            return 0
        depths = [
            self._operand_depth(op, limit - 1)
            for op in value.operands
            if isinstance(op, ir.Instruction)
        ]
        return 1 + (max(depths) if depths else 0)

    # -- (2) scheduling ------------------------------------------------------------------
    def _schedule_for_clock(self, fn: ir.Function, stats: TimeSqueezerStats) -> None:
        """Group fast ops together so fast-clock regions are long (SCD)."""
        scheduler = self.noelle.basic_block_scheduler(fn)
        for block in fn.blocks:
            changed = scheduler.schedule_block(
                block, priority=lambda i: 0 if i.opcode in FAST_OPS else 1
            )
            if changed:
                stats.blocks_rescheduled += 1

    # -- (3) clock-change injection --------------------------------------------------------
    def _inject_clock_changes(self, fn: ir.Function, stats: TimeSqueezerStats) -> None:
        """Per block: run fast-op prefixes at the fast clock.

        The block scheduler moved fast ops to the front; a ``clock_set``
        pair brackets the prefix when it is long enough to amortize the
        change.  Loop regions whose whole body is fast get the pair hoisted
        around the loop instead (FR: innermost loops first).
        """
        clock_set = declare_intrinsic(self.noelle.module, "clock_set")
        wrapped_blocks: set[int] = set()
        # FR: walk the loop-nesting forest bottom-up so an innermost fast
        # loop is wrapped before its parent is considered.
        forest = self.noelle.loop_forest(fn)
        for node in forest.bottom_up():
            loop = node.value.natural_loop
            body = [i for b in loop.blocks for i in b.instructions]
            if all(i.opcode in FAST_OPS or isinstance(i, ir.Phi) for i in body):
                entries = loop.entries()
                exits = loop.exit_blocks()
                if len(entries) == 1:
                    self._insert_clock(clock_set, entries[0], FAST_CLOCK, at_end=True)
                    for exit_block in exits:
                        self._insert_clock(clock_set, exit_block, SLOW_CLOCK, at_end=False)
                    stats.clock_changes_inserted += 1 + len(exits)
                    stats.fast_regions += 1
                    wrapped_blocks.update(id(b) for b in loop.blocks)
        for block in fn.blocks:
            if id(block) in wrapped_blocks:
                continue
            prefix = 0
            for inst in block.instructions:
                if isinstance(inst, (ir.Phi,)):
                    continue
                if inst.opcode in FAST_OPS and not inst.is_terminator():
                    prefix += 1
                else:
                    break
            if prefix >= 6:  # long enough to amortize two clock changes
                self._wrap_prefix(clock_set, block, prefix)
                stats.clock_changes_inserted += 2
                stats.fast_regions += 1
        self.noelle._loopinfos.pop(id(fn), None)

    def _insert_clock(
        self, clock_set: ir.Function, block: ir.BasicBlock, period: int, at_end: bool
    ) -> None:
        call = ir.Call(clock_set, [ir.const_int(period)])
        call.parent = block
        if at_end and block.terminator is not None:
            index = block.instructions.index(block.terminator)
        else:
            first = block.first_non_phi()
            index = block.instructions.index(first) if first is not None else 0
        block.instructions.insert(index, call)

    def _wrap_prefix(self, clock_set: ir.Function, block: ir.BasicBlock, prefix: int) -> None:
        first = block.first_non_phi()
        assert first is not None
        start = block.instructions.index(first)
        fast = ir.Call(clock_set, [ir.const_int(FAST_CLOCK)])
        fast.parent = block
        block.instructions.insert(start, fast)
        slow = ir.Call(clock_set, [ir.const_int(SLOW_CLOCK)])
        slow.parent = block
        block.instructions.insert(start + prefix + 1, slow)
