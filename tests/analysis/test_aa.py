"""Alias analysis tests: basic AA rules and Andersen points-to."""

from repro import ir
from repro.analysis.aa import AliasResult, BasicAliasAnalysis, ModRefResult
from repro.analysis.pointsto import AndersenAliasAnalysis, PointsToAnalysis
from repro.frontend import compile_source


def find_inst(module, fn_name, predicate):
    for inst in module.get_function(fn_name).instructions():
        if predicate(inst):
            return inst
    raise AssertionError("instruction not found")


class TestBasicAA:
    def setup_method(self):
        self.aa = BasicAliasAnalysis()
        self.module = ir.Module("m")
        self.fn = self.module.add_function("f", ir.FunctionType(ir.VOID, []))
        self.builder, _ = ir.build_function(self.fn)

    def test_distinct_allocas_no_alias(self):
        a = self.builder.alloca(ir.I64, "a")
        b = self.builder.alloca(ir.I64, "b")
        assert self.aa.alias(a, b) is AliasResult.NO_ALIAS

    def test_same_pointer_must_alias(self):
        a = self.builder.alloca(ir.I64, "a")
        assert self.aa.alias(a, a) is AliasResult.MUST_ALIAS

    def test_distinct_globals_no_alias(self):
        g1 = self.module.add_global("g1", ir.I64)
        g2 = self.module.add_global("g2", ir.I64)
        assert self.aa.alias(g1, g2) is AliasResult.NO_ALIAS

    def test_alloca_vs_global_no_alias(self):
        a = self.builder.alloca(ir.I64, "a")
        g = self.module.add_global("g", ir.I64)
        assert self.aa.alias(a, g) is AliasResult.NO_ALIAS

    def test_null_never_aliases(self):
        a = self.builder.alloca(ir.I64, "a")
        null = ir.ConstantNull(ir.PointerType(ir.I64))
        assert self.aa.alias(a, null) is AliasResult.NO_ALIAS

    def test_gep_constant_indices(self):
        arr = self.builder.alloca(ir.ArrayType(ir.I64, 10), "arr")
        p0 = self.builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(0)], "p0")
        p1 = self.builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(1)], "p1")
        p0b = self.builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(0)], "p0b")
        assert self.aa.alias(p0, p1) is AliasResult.NO_ALIAS
        assert self.aa.alias(p0, p0b) is AliasResult.MUST_ALIAS

    def test_gep_variable_index_may_alias(self):
        arr = self.builder.alloca(ir.ArrayType(ir.I64, 10), "arr")
        index = self.builder.add(ir.const_int(0), ir.const_int(1), "i")
        p_var = self.builder.elem_ptr(arr, [ir.const_int(0), index], "pv")
        p0 = self.builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(0)], "p0")
        assert self.aa.alias(p_var, p0) is AliasResult.MAY_ALIAS

    def test_two_arguments_may_alias(self):
        module = ir.Module("m2")
        ptr_ty = ir.PointerType(ir.I64)
        fn = module.add_function("g", ir.FunctionType(ir.VOID, [ptr_ty, ptr_ty]), ["p", "q"])
        aa = BasicAliasAnalysis()
        assert aa.alias(fn.args[0], fn.args[1]) is AliasResult.MAY_ALIAS

    def test_nonescaping_alloca_vs_argument(self):
        module = ir.Module("m3")
        ptr_ty = ir.PointerType(ir.I64)
        fn = module.add_function("g", ir.FunctionType(ir.VOID, [ptr_ty]), ["p"])
        builder, _ = ir.build_function(fn)
        local = builder.alloca(ir.I64, "local")
        builder.store(ir.const_int(1), local)
        builder.ret()
        aa = BasicAliasAnalysis()
        assert aa.alias(local, fn.args[0]) is AliasResult.NO_ALIAS

    def test_escaping_alloca_vs_argument(self):
        module = ir.Module("m4")
        ptr_ty = ir.PointerType(ir.I64)
        sink = module.declare_function("sink", ir.FunctionType(ir.VOID, [ptr_ty]))
        fn = module.add_function("g", ir.FunctionType(ir.VOID, [ptr_ty]), ["p"])
        builder, _ = ir.build_function(fn)
        local = builder.alloca(ir.I64, "local")
        builder.call(sink, [local])  # escapes!
        builder.ret()
        aa = BasicAliasAnalysis()
        assert aa.alias(local, fn.args[0]) is AliasResult.MAY_ALIAS


class TestAndersen:
    def test_distinct_arrays_proven_by_pointsto(self):
        source = """
int a[10];
int b[10];
void kernel(int *p, int *q) {
  int i;
  for (i = 0; i < 10; i = i + 1) { q[i] = p[i] + 1; }
}
int main() { kernel(a, b); return b[0]; }
"""
        module = compile_source(source)
        basic = BasicAliasAnalysis()
        andersen = AndersenAliasAnalysis(module)
        kernel = module.get_function("kernel")
        p, q = kernel.args
        # Basic AA cannot distinguish two pointer arguments...
        assert basic.alias(p, q) is AliasResult.MAY_ALIAS
        # ...but whole-module points-to proves them disjoint.
        assert andersen.alias(p, q) is AliasResult.NO_ALIAS

    def test_same_array_through_both_args(self):
        source = """
int a[10];
void kernel(int *p, int *q) { q[0] = p[0]; }
int main() { kernel(a, a); return a[0]; }
"""
        module = compile_source(source)
        andersen = AndersenAliasAnalysis(module)
        kernel = module.get_function("kernel")
        p, q = kernel.args
        assert andersen.alias(p, q) is AliasResult.MAY_ALIAS

    def test_malloc_sites_distinct(self):
        source = """
int main() {
  int *p = (int *)malloc(4);
  int *q = (int *)malloc(4);
  p[0] = 1;
  q[0] = 2;
  return p[0] + q[0];
}
"""
        module = compile_source(source)
        andersen = AndersenAliasAnalysis(module)
        stores = [i for i in module.get_function("main").instructions()
                  if isinstance(i, ir.Store)]
        assert andersen.alias(stores[0].pointer, stores[1].pointer) is (
            AliasResult.NO_ALIAS
        )

    def test_indirect_call_targets(self):
        source = """
int selector = 1;
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int main() {
  int (*op)(int);
  if (selector) { op = inc; } else { op = dec; }
  return op(5);
}
"""
        module = compile_source(source)
        pts = PointsToAnalysis(module)
        call = find_inst(module, "main", lambda i: isinstance(i, ir.Call) and i.is_indirect())
        targets = {f.name for f in pts.callees_of(call)}
        assert targets == {"inc", "dec"}

    def test_escape_to_unknown_external(self):
        module = ir.Module("esc")
        ptr_ty = ir.PointerType(ir.I64)
        unknown = module.declare_function("mystery", ir.FunctionType(ir.VOID, [ptr_ty]))
        fn = module.add_function("main", ir.FunctionType(ir.I64, []))
        builder, _ = ir.build_function(fn)
        local = builder.alloca(ir.I64, "x")
        builder.call(unknown, [local])
        loaded = builder.load(local, "v")
        builder.ret(loaded)
        pts = PointsToAnalysis(module)
        obj = pts.object_for_site(local)
        assert obj is not None and pts.escapes(obj)

    def test_mod_ref_through_calls(self):
        source = """
int counter = 0;
int other = 0;
void bump() { counter = counter + 1; }
int main() {
  bump();
  return counter + other;
}
"""
        module = compile_source(source)
        andersen = AndersenAliasAnalysis(module)
        call = find_inst(module, "main", lambda i: isinstance(i, ir.Call))
        counter = module.get_global("counter")
        other = module.get_global("other")
        assert andersen.mod_ref(call, counter) & ModRefResult.MOD
        assert andersen.mod_ref(call, other) is ModRefResult.NO_MOD_REF

    def test_global_function_table(self):
        source = """
int one() { return 1; }
int two() { return 2; }
int (*table_entry)(void) = one;
int main() {
  int (*f)(void);
  f = table_entry;
  return f();
}
"""
        module = compile_source(source)
        pts = PointsToAnalysis(module)
        call = find_inst(module, "main", lambda i: isinstance(i, ir.Call) and i.is_indirect())
        targets = {f.name for f in pts.callees_of(call)}
        assert "one" in targets
