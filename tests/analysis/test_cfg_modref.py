"""CFG utilities and interprocedural Mod/Ref summary tests."""

from repro import ir
from repro.analysis.cfg import (
    exit_blocks,
    postorder,
    remove_unreachable_blocks,
    reverse_postorder,
    split_edge,
)
from repro.analysis.aa import ModRefResult
from repro.analysis.modref import ModRefAnalysis
from repro.analysis.pointsto import PointsToAnalysis
from repro.frontend import compile_source
from repro.interp import Interpreter
from tests.conftest import build_count_loop


class TestTraversals:
    def test_reverse_postorder_starts_at_entry(self, count_loop):
        _, fn, v = count_loop
        order = reverse_postorder(fn)
        assert order[0] is v["entry"]
        # A block appears after at least one of its predecessors (except
        # loop headers via back edges).
        assert order.index(v["header"]) < order.index(v["body"])

    def test_postorder_ends_at_entry(self, count_loop):
        _, fn, _ = count_loop
        order = postorder(fn)
        assert order[-1] is fn.entry

    def test_unreachable_blocks_skipped(self, count_loop):
        module, fn, _ = count_loop
        dead = fn.add_block("dead")
        dead.append(ir.Ret(ir.const_int(0)))
        order = postorder(fn)
        assert dead not in order

    def test_exit_blocks(self, count_loop):
        _, fn, v = count_loop
        assert exit_blocks(fn) == [v["exit"]]


class TestCFGEdits:
    def test_remove_unreachable(self, count_loop):
        module, fn, _ = count_loop
        dead = fn.add_block("dead")
        dead.append(ir.Ret(ir.const_int(0)))
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        assert dead not in fn.blocks
        ir.verify_function(fn)

    def test_remove_unreachable_fixes_phis(self):
        source = """
int flag = 1;
int main() {
  int r = 0;
  if (flag) { r = 1; } else { r = 2; }
  return r;
}
"""
        module = compile_source(source)
        fn = module.get_function("main")
        # Manually disconnect the else path, then clean up.
        entry_term = fn.entry.terminator
        if isinstance(entry_term, ir.CondBranch):
            then_block = entry_term.true_block
            entry_term.erase_from_parent()
            fn.entry.append(ir.Branch(then_block))
            remove_unreachable_blocks(fn)
            ir.verify_function(fn)

    def test_split_edge_preserves_semantics(self, count_loop):
        module, fn, v = count_loop
        middle = split_edge(v["entry"], v["header"])
        ir.verify_function(fn)
        assert middle in fn.blocks
        result = Interpreter(module).run("sum", [10])
        assert result.return_value == 45

    def test_split_edge_updates_phis(self, count_loop):
        module, fn, v = count_loop
        middle = split_edge(v["body"], v["header"])
        for phi in v["header"].phis():
            preds = [p for _, p in phi.incoming()]
            assert middle in preds
            assert v["body"] not in preds
        ir.verify_function(fn)


class TestModRef:
    def _analysis(self, source):
        module = compile_source(source)
        pts = PointsToAnalysis(module)
        return module, ModRefAnalysis(module, pts)

    def test_pure_computation_has_no_footprint(self):
        module, analysis = self._analysis(
            "int f(int x) { return x * 2; }\nint main() { return f(2); }"
        )
        effects = analysis.function_effects(module.get_function("f"))
        assert not effects.reads and not effects.writes and not effects.unknown

    def test_global_writer_footprint(self):
        module, analysis = self._analysis("""
int g = 0;
void set_it(int v) { g = v; }
int main() { set_it(4); return g; }
""")
        effects = analysis.function_effects(module.get_function("set_it"))
        assert effects.writes and not effects.reads

    def test_transitive_through_calls(self):
        module, analysis = self._analysis("""
int g = 0;
void leaf() { g = 1; }
void middle() { leaf(); }
int main() { middle(); return g; }
""")
        effects = analysis.function_effects(module.get_function("middle"))
        assert effects.writes  # inherited from leaf

    def test_call_mod_ref_disjoint(self):
        module, analysis = self._analysis("""
int a = 0;
int b = 0;
void touch_a() { a = 1; }
int main() { touch_a(); return b; }
""")
        call = [i for i in module.get_function("main").instructions()
                if isinstance(i, ir.Call)][0]
        assert analysis.call_mod_ref(call, module.get_global("b")) is (
            ModRefResult.NO_MOD_REF
        )
        assert analysis.call_mod_ref(call, module.get_global("a")) & (
            ModRefResult.MOD
        )

    def test_unknown_external_is_conservative(self):
        module = compile_source("int main() { return 1; }")
        unknown = module.declare_function(
            "mystery", ir.FunctionType(ir.VOID, [])
        )
        pts = PointsToAnalysis(module)
        analysis = ModRefAnalysis(module, pts)
        assert analysis.function_effects(unknown).unknown

    def test_indirect_call_effects(self):
        module, analysis = self._analysis("""
int g = 0;
int sel = 0;
void w1() { g = 1; }
void w2() { g = 2; }
int main() {
  void (*f)(void);
  if (sel) { f = w1; } else { f = w2; }
  f();
  return g;
}
""")
        main = module.get_function("main")
        effects = analysis.function_effects(main)
        assert effects.writes  # through both indirect targets
