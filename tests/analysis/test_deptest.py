"""The symbolic dependence-test engine (DESIGN.md §14).

Unit-level: SCEV node identity, symbolic folding, trip counts, srem
range proofs, and the ZIV / strong-SIV / GCD verdict hierarchy.  The
differential validation against dynamic executions lives in
tests/analysis/test_deptest_differential.py and the fuzz oracle.
"""

from repro import ir
from repro.analysis.deptest import (
    PROVEN_DEPENDENT,
    PROVEN_INDEPENDENT,
    UNKNOWN,
    DependenceTester,
    FunctionDepTest,
    deptest_enabled,
)
from repro.analysis.loopinfo import LoopInfo
from repro.analysis.scev import (
    SCEVAddRec,
    SCEVConstant,
    SCEVUnknown,
    ScalarEvolution,
)
from repro.frontend import compile_source
from repro.ir.instructions import Load, Store


def loop_of(source, fn_name="main", loop_index=0):
    module = compile_source(source)
    fn = module.get_function(fn_name)
    return module, LoopInfo(fn).loops()[loop_index]


def make_tester(source, **kwargs):
    module, loop = loop_of(source, **kwargs)
    return module, loop, DependenceTester(loop)


def loop_accesses(loop):
    loads = [i for i in loop.instructions() if isinstance(i, Load)]
    stores = [i for i in loop.instructions() if isinstance(i, Store)]
    return loads, stores


class TestSCEVUnknownIdentity:
    """SCEVUnknown keys by the wrapped Value, not ``id(value)``."""

    def test_structurally_equal_constants_compare_equal(self):
        a = SCEVUnknown(ir.const_int(7))
        b = SCEVUnknown(ir.const_int(7))
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_values_compare_unequal(self):
        assert SCEVUnknown(ir.const_int(7)) != SCEVUnknown(ir.const_int(8))

    def test_usable_as_memo_key(self):
        memo = {SCEVUnknown(ir.const_int(3)): "cached"}
        assert memo[SCEVUnknown(ir.const_int(3))] == "cached"

    def test_instruction_operands_keep_identity_semantics(self, count_loop):
        _, _, values = count_loop
        # Two unknowns over the same instruction object are equal ...
        assert SCEVUnknown(values["acc_next"]) == SCEVUnknown(values["acc_next"])
        # ... but distinct instructions never unify.
        assert SCEVUnknown(values["acc_next"]) != SCEVUnknown(values["i_next"])


class TestSymbolicFolding:
    def test_addrec_sub_addrec_cancels_to_invariant(self):
        # a[i + 2] - computed as (i + 2) - i would cancel; here we check
        # the engine-level fold directly through derived expressions:
        # j = i + n; d = j - i  ==>  {n, +, 0}-like invariant n.
        module, loop = loop_of(
            """
int main(int n) {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) {
    int j = i + n;
    int d = j - i;
    s = s + d;
  }
  return s;
}
"""
        )
        scev = ScalarEvolution(loop, fold_srem=True)
        subs = [
            inst
            for inst in loop.instructions()
            if isinstance(inst, ir.BinaryOp) and inst.opcode == "sub"
        ]
        assert subs
        evolution = scev.evolution_of(subs[0])
        # (i + n) - i is the loop-invariant n: an addrec with step 0 of
        # start n, which the fold reduces to the SCEVUnknown for n.
        assert evolution is not None
        if isinstance(evolution, SCEVAddRec):
            assert evolution.constant_step() == 0
        else:
            assert isinstance(evolution, SCEVUnknown)

    def test_mul_by_invariant_scales_step(self):
        module, loop = loop_of(
            """
int a[500];
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) { a[i * 3 + 2] = i; }
  return a[0];
}
"""
        )
        scev = ScalarEvolution(loop, fold_srem=True)
        adds = [
            inst
            for inst in loop.instructions()
            if isinstance(inst, ir.BinaryOp) and inst.opcode == "add"
        ]
        evolutions = [scev.evolution_of(inst) for inst in adds]
        addrecs = [e for e in evolutions if isinstance(e, SCEVAddRec)]
        assert any(
            e.constant_step() == 3 and e.constant_start() == 2 for e in addrecs
        )


class TestTripCounts:
    def scev_for(self, source):
        _, loop = loop_of(source)
        return ScalarEvolution(loop, fold_srem=True)

    def test_upward_slt(self):
        scev = self.scev_for(
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"
        )
        assert scev.trip_count() == 10

    def test_downward_sgt(self):
        scev = self.scev_for(
            "int main() { int i; int s = 0;"
            " for (i = 10; i > 0; i = i - 1) { s = s + i; } return s; }"
        )
        assert scev.trip_count() == 10

    def test_strided_rounds_up(self):
        scev = self.scev_for(
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 100; i = i + 7) { s = s + 1; } return s; }"
        )
        assert scev.trip_count() == 15  # ceil(100 / 7)

    def test_nonzero_start(self):
        scev = self.scev_for(
            "int main() { int i; int s = 0;"
            " for (i = 3; i < 10; i = i + 1) { s = s + 1; } return s; }"
        )
        assert scev.trip_count() == 7

    def test_test_last_loop_counts_the_run_body(self):
        # In a do-while the single block is header AND latch; the test
        # sits after the body, so the failing iteration already ran.
        # (Found by the deptest fuzz oracle: trip 1 here let srem fold
        # a wrapping subscript and fabricate an independence proof.)
        scev = self.scev_for(
            "int main() { int i; int s = 0;"
            " i = 0; do { s = s + i; i = i + 1; } while (i < 2);"
            " return s; }"
        )
        assert scev.trip_count() == 2

    def test_symbolic_bound_is_unknown(self):
        scev = self.scev_for(
            "int main(int n) { int i; int s = 0;"
            " for (i = 0; i < n; i = i + 1) { s = s + 1; } return s; }"
        )
        assert scev.trip_count() is None

    def test_addrec_range_over_trip(self):
        _, loop = loop_of(
            "int a[64]; int main() { int i;"
            " for (i = 2; i < 12; i = i + 3) { a[i] = 1; } return a[2]; }"
        )
        scev = ScalarEvolution(loop, fold_srem=True)
        phi = next(iter(loop.header.phis()))
        evolution = scev.evolution_of(phi)
        assert isinstance(evolution, SCEVAddRec)
        # i takes 2, 5, 8, 11 — trip 4, range [2, 11].
        assert scev.trip_count() == 4
        assert scev.addrec_range(evolution) == (2, 11)


class TestSremFolding:
    SOURCE = """
int a[16];
int main() {{
  int i;
  for (i = 0; i < {bound}; i = i + 1) {{ a[i % 16] = i; }}
  return a[0];
}}
"""

    def evolution_of_index(self, source, fold_srem):
        module, loop = loop_of(source)
        scev = ScalarEvolution(loop, fold_srem=fold_srem)
        srems = [
            inst
            for inst in loop.instructions()
            if isinstance(inst, ir.BinaryOp) and inst.opcode == "srem"
        ]
        assert srems
        return scev.evolution_of(srems[0])

    def test_in_range_modulo_folds_away(self):
        evolution = self.evolution_of_index(
            self.SOURCE.format(bound=10), fold_srem=True
        )
        assert isinstance(evolution, SCEVAddRec)
        assert evolution.constant_step() == 1

    def test_wrapping_modulo_does_not_fold(self):
        # i reaches 17 > 15: the modulo genuinely wraps, so folding it
        # away would be unsound — the engine must refuse.
        evolution = self.evolution_of_index(
            self.SOURCE.format(bound=18), fold_srem=True
        )
        assert not isinstance(evolution, SCEVAddRec)

    def test_fold_disabled_keeps_seed_behaviour(self):
        evolution = self.evolution_of_index(
            self.SOURCE.format(bound=10), fold_srem=False
        )
        assert not isinstance(evolution, SCEVAddRec)


class TestVerdicts:
    def test_ziv_disjoint_constants(self):
        _, loop, tester = make_tester(
            "int a[8]; int main() { int i; int s = 0;"
            " for (i = 0; i < 5; i = i + 1) { a[0] = i; s = s + a[5]; }"
            " return s; }"
        )
        loads, stores = loop_accesses(loop)
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == PROVEN_INDEPENDENT

    def test_ziv_overlap_has_no_distance(self):
        _, loop, tester = make_tester(
            "int a[8]; int main() { int i; int s = 0;"
            " for (i = 0; i < 5; i = i + 1) { a[3] = i; s = s + a[3]; }"
            " return s; }"
        )
        loads, stores = loop_accesses(loop)
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == PROVEN_DEPENDENT
        # Every iteration pair conflicts: claiming a unique distance
        # (even 0) would be refuted dynamically.
        assert verdict.distance is None

    def test_strong_siv_distance(self):
        _, loop, tester = make_tester(
            "int a[32]; int main() { int i; int s = 0;"
            " for (i = 0; i < 10; i = i + 1) { a[i + 3] = a[i] + 1; }"
            " return s; }"
        )
        loads, stores = loop_accesses(loop)
        # store a[i+3] at iteration i conflicts with load a[j] at j = i+3.
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == PROVEN_DEPENDENT
        assert verdict.distance == 3
        # And the reverse orientation proves the negated distance.
        assert tester.test_pair(loads[0], stores[0]).distance == -3

    def test_strong_siv_trip_filter_proves_independence(self):
        _, loop, tester = make_tester(
            "int a[64]; int main() { int i; int s = 0;"
            " for (i = 0; i < 10; i = i + 1) { a[i + 20] = a[i] + 1; }"
            " return s; }"
        )
        loads, stores = loop_accesses(loop)
        # Distance 20 >= trip 10: no two live iterations can meet.
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == PROVEN_INDEPENDENT

    def test_same_subscript_store_is_distance_zero(self):
        _, loop, tester = make_tester(
            "int a[16]; int main() { int i;"
            " for (i = 0; i < 10; i = i + 1) { a[i] = a[i] + 1; }"
            " return a[0]; }"
        )
        loads, stores = loop_accesses(loop)
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == PROVEN_DEPENDENT
        assert verdict.distance == 0
        # Distance 0 is intra-iteration: not loop-carried.
        assert tester.carried(stores[0], loads[0]) == (False, None)

    def test_gcd_parity_disproves(self):
        _, loop, tester = make_tester(
            "int a[64]; int main() { int i;"
            " for (i = 0; i < 10; i = i + 1) { a[2 * i] = a[2 * i + 1] + 1; }"
            " return a[0]; }"
        )
        loads, stores = loop_accesses(loop)
        # Even slots written, odd slots read: strides are equal (strong
        # SIV) with a non-integer distance — proven independent.
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == PROVEN_INDEPENDENT

    def test_srem_wrapping_subscript_is_unknown(self):
        _, loop, tester = make_tester(
            "int a[16]; int main() { int i;"
            " for (i = 0; i < 18; i = i + 1) { a[i % 16] = a[(i + 3) % 16]; }"
            " return a[0]; }"
        )
        loads, stores = loop_accesses(loop)
        verdict = tester.test_pair(stores[0], loads[0])
        assert verdict.kind == UNKNOWN

    def test_carried_maps_independent_to_absent(self):
        _, loop, tester = make_tester(
            "int a[8]; int b[8]; int main() { int i;"
            " for (i = 0; i < 5; i = i + 1) { a[i] = b[i] + 1; }"
            " return a[0]; }"
        )
        loads, stores = loop_accesses(loop)
        # Different base objects: unknown, conservative answer.
        assert tester.test_pair(stores[0], loads[0]).kind == UNKNOWN
        assert tester.carried(stores[0], loads[0]) == (True, None)


class TestScopes:
    SOURCE = """
int a[64];
int main(int k) {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    a[i + k + 2] = a[i + k] + 1;
  }
  return a[0];
}
"""

    def test_loop_scope_cancels_symbols(self):
        _, loop, tester = make_tester(self.SOURCE)
        loads, stores = loop_accesses(loop)
        verdict = tester.test_pair(stores[0], loads[0], scope="loop")
        assert verdict.kind == PROVEN_DEPENDENT
        assert verdict.distance == 2

    def test_function_scope_refuses_symbols(self):
        # k may differ between invocations, re-aligning the accesses:
        # the invocation-independent proof must not fire.
        _, loop, tester = make_tester(self.SOURCE)
        loads, stores = loop_accesses(loop)
        verdict = tester.test_pair(stores[0], loads[0], scope="function")
        assert verdict.kind == UNKNOWN
        assert not tester.proves_no_dependence(stores[0], loads[0])

    def test_function_scope_proves_constant_forms(self):
        module = compile_source(
            "int a[64]; int main() { int i;"
            " for (i = 0; i < 10; i = i + 1) { a[i + 20] = a[i] + 1; }"
            " return a[0]; }"
        )
        fn = module.get_function("main")
        fdt = FunctionDepTest(fn)
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert fdt.proves_independent(stores[0], loads[0])

    def test_function_scope_needs_a_common_loop(self):
        module = compile_source(
            "int a[8]; int main() { int i; int s = 0;"
            " for (i = 0; i < 5; i = i + 1) { a[i] = i; }"
            " s = a[7]; return s; }"
        )
        fn = module.get_function("main")
        fdt = FunctionDepTest(fn)
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        # The load sits outside the loop: no common loop, no proof.
        assert not fdt.proves_independent(stores[0], loads[0])


class TestFlagGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("NOELLE_DEPTEST", raising=False)
        assert not deptest_enabled()
        monkeypatch.setenv("NOELLE_DEPTEST", "0")
        assert not deptest_enabled()

    def test_enabled_by_flag(self, monkeypatch):
        monkeypatch.setenv("NOELLE_DEPTEST", "1")
        assert deptest_enabled()
