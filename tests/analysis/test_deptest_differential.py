"""Differential validation of the symbolic dependence-test engine.

Three contracts over the whole workload registry:

* **subset** — with ``NOELLE_DEPTEST=1`` the PDG's edge multiset is a
  subset of the default build's on every workload (pruning only ever
  removes edges, never adds or reshapes).
* **inertness** — with the flag off, figure outputs are byte-identical
  to an explicit ``NOELLE_DEPTEST=0`` run (the engine is never even
  consulted: the counters stay at zero).
* **soundness** — every pair the flag-on PDG prunes is dynamically
  conflict-free: executing the workload under the memory observer never
  sees the two instructions touch a common address within one execution
  of their common loop.

The DOALL-unlock acceptance criterion (a loop the seed rejects that
parallelizes under the flag) is asserted on the registry workload that
exhibits it and on generated fuzz programs of the carried/mayalias
families.
"""

import json

import pytest

from repro.analysis.deptest import FunctionDepTest
from repro.analysis.loopinfo import LoopInfo
from repro.core.noelle import Noelle
from repro.experiments.figures import fig3_dependences, fig4_invariants
from repro.fuzz.gen import generate_program
from repro.frontend.codegen import compile_source
from repro.interp.interp import Interpreter, StepLimitExceeded
from repro.ir.instructions import Load, Store
from repro.perf import STATS
from repro.workloads.registry import all_workloads, get

WORKLOAD_NAMES = [w.name for w in all_workloads()]


def edge_label(value):
    parent = getattr(value, "parent", None)
    if parent is not None and hasattr(parent, "instructions"):
        fn = getattr(parent, "parent", None)
        index = (
            parent.instructions.index(value)
            if value in parent.instructions
            else -1
        )
        return f"{getattr(fn, 'name', '?')}:{parent.name}:{index}"
    return f"{type(value).__name__}:{getattr(value, 'name', '')}"


def pdg_edge_multiset(module):
    from collections import Counter

    pdg = Noelle(module).pdg()
    return pdg, Counter(
        "|".join(
            [
                edge.kind,
                edge.data_kind or "",
                str(edge.is_memory),
                str(edge.is_must),
                edge_label(edge.src.value),
                edge_label(edge.dst.value),
            ]
        )
        for edge in pdg.edges()
    )


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_pdg_edges_are_a_subset_with_deptest_on(workload, monkeypatch):
    monkeypatch.delenv("NOELLE_DEPTEST", raising=False)
    pdg_off, edges_off = pdg_edge_multiset(get(workload).compile())
    monkeypatch.setenv("NOELLE_DEPTEST", "1")
    pdg_on, edges_on = pdg_edge_multiset(get(workload).compile())
    extra = edges_on - edges_off
    assert not extra, f"deptest added PDG edges on {workload}: {extra}"
    assert pdg_on.memory_disproved >= pdg_off.memory_disproved
    assert pdg_on.memory_queries == pdg_off.memory_queries


def test_figures_identical_with_flag_off(monkeypatch):
    monkeypatch.delenv("NOELLE_DEPTEST", raising=False)
    STATS.reset()
    unset = json.dumps(
        {"fig3": fig3_dependences(), "fig4": fig4_invariants()},
        sort_keys=True,
    )
    assert STATS.get("deptest.pairs_tested") == 0  # engine never consulted
    monkeypatch.setenv("NOELLE_DEPTEST", "0")
    zero = json.dumps(
        {"fig3": fig3_dependences(), "fig4": fig4_invariants()},
        sort_keys=True,
    )
    assert unset == zero


def test_fig3_disproves_more_with_flag_on(monkeypatch):
    monkeypatch.delenv("NOELLE_DEPTEST", raising=False)
    off = {row["suite"]: row["noelle_disproved"] for row in fig3_dependences()}
    monkeypatch.setenv("NOELLE_DEPTEST", "1")
    on = {row["suite"]: row["noelle_disproved"] for row in fig3_dependences()}
    assert all(on[suite] >= off[suite] for suite in off)
    assert sum(on.values()) > sum(off.values())


def pruned_pair_claims(module):
    """The (loop, a, b) claims the flag-on PDG build prunes, as fuzz-oracle
    claim objects ready for dynamic validation."""
    from repro.fuzz.oracles import _DepClaim

    claims = []
    for fn in module.defined_functions():
        fdt = FunctionDepTest(fn)
        info = LoopInfo(fn)
        for loop in info.loops():
            accesses = [
                inst
                for block in loop.blocks
                for inst in block.instructions
                if isinstance(inst, (Load, Store))
            ]
            for i, a in enumerate(accesses):
                for b in accesses[i:]:
                    if not isinstance(a, Store) and not isinstance(b, Store):
                        continue
                    if not fdt.proves_independent(a, b):
                        continue
                    tester = fdt._testers[id(fdt._common_loop(a, b))]
                    verdict = tester.test_pair(a, b, scope="function")
                    claims.append(
                        _DepClaim(fn.name, loop, a, b, verdict)
                    )
    return claims


def loop_scope_claims(module):
    """Every provable loop-scope verdict (what carried/DOALL consume)."""
    from repro.analysis.deptest import DependenceTester
    from repro.fuzz.oracles import _DepClaim

    claims = []
    for fn in module.defined_functions():
        for loop in LoopInfo(fn).loops():
            tester = DependenceTester(loop)
            accesses = [
                inst
                for block in loop.blocks
                for inst in block.instructions
                if isinstance(inst, (Load, Store))
            ]
            for i, a in enumerate(accesses):
                for b in accesses[i:]:
                    if not isinstance(a, Store) and not isinstance(b, Store):
                        continue
                    verdict = tester.test_pair(a, b)
                    if verdict.is_independent or (
                        verdict.is_dependent and verdict.distance is not None
                    ):
                        claims.append(_DepClaim(fn.name, loop, a, b, verdict))
    return claims


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_static_verdicts_are_dynamically_consistent(workload, monkeypatch):
    """Pruned pairs never conflict; proven distances match observation."""
    from repro.fuzz.oracles import _check_dep_claim, _DepRecorder

    monkeypatch.setenv("NOELLE_DEPTEST", "1")
    module = get(workload).compile()
    claims = pruned_pair_claims(module) + loop_scope_claims(module)
    if not claims:
        pytest.skip(f"{workload}: nothing proven, nothing to validate")
    recorder = _DepRecorder(claims)
    interp = Interpreter(module, step_limit=50_000_000, engine="reference")
    interp.edge_observer = recorder.on_edge
    interp.memory_observer = recorder.on_access
    try:
        interp.run()
    except StepLimitExceeded:
        pytest.skip(f"{workload}: step limit hit under the observer")
    for claim in claims:
        violation = _check_dep_claim(claim, recorder)
        assert violation is None, violation


def doall_decisions(source, name):
    module = compile_source(source, name)
    noelle = Noelle(module)
    return {
        (l.structure.function.name, l.structure.header.name): l.is_doall()
        for l in noelle.loops()
    }


class TestDoallUnlock:
    def test_stringsearch_setup_loop_unlocks(self, monkeypatch):
        """The registry loop the seed rejects but the engine proves DOALL."""
        monkeypatch.delenv("NOELLE_DEPTEST", raising=False)
        module = get("stringsearch").compile()
        noelle = Noelle(module)
        target_off = [
            l
            for l in noelle.loops()
            if l.structure.function.name == "setup"
            and l.structure.header.name == "while.cond"
        ]
        assert target_off and not target_off[0].is_doall()
        monkeypatch.setenv("NOELLE_DEPTEST", "1")
        module = get("stringsearch").compile()
        noelle = Noelle(module)
        target_on = [
            l
            for l in noelle.loops()
            if l.structure.function.name == "setup"
            and l.structure.header.name == "while.cond"
        ]
        assert target_on and target_on[0].is_doall()

    @pytest.mark.parametrize(
        "family,seed", [("carried", 5), ("mayalias", 27), ("nested", 112)]
    )
    def test_fuzz_families_unlock_doall(self, family, seed, monkeypatch):
        program = generate_program(seed)
        assert program.family == family  # seed chosen for its family
        monkeypatch.delenv("NOELLE_DEPTEST", raising=False)
        off = doall_decisions(program.source, program.name)
        monkeypatch.setenv("NOELLE_DEPTEST", "1")
        on = doall_decisions(program.source, program.name)
        unlocked = [key for key in off if not off[key] and on.get(key)]
        assert unlocked, f"{family} seed {seed}: no DOALL unlock"

    def test_unlock_moves_the_counters(self, monkeypatch):
        monkeypatch.setenv("NOELLE_DEPTEST", "1")
        STATS.reset()
        module = get("stringsearch").compile()
        noelle = Noelle(module)
        for loop in noelle.loops():
            loop.is_doall()
        assert STATS.get("deptest.pairs_tested") > 0
        assert STATS.get("deptest.pdg_pairs_pruned") > 0
        assert STATS.get("deptest.pdg_edges_pruned") > 0
        # The loop-scope carried path fires where the function-scope
        # pruning cannot (symbolic offsets that only cancel per-run).
        STATS.reset()
        program = generate_program(5)
        module = compile_source(program.source, program.name)
        noelle = Noelle(module)
        for loop in noelle.loops():
            loop.is_doall()
        assert STATS.get("deptest.carried_disproved") > 0
