"""Dominator and post-dominator tests, including a property-based
comparison against a brute-force reference on random CFGs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.analysis.dominators import DominatorTree, PostDominatorTree
from tests.conftest import build_count_loop


def build_cfg(edges, num_blocks, loops_back=()):
    """Build a function whose CFG has the given edges (0 is entry).

    Blocks with no outgoing edges get ``ret``; one successor -> ``br``;
    two -> ``cond_br``.  More than two successors are not generated.
    """
    module = ir.Module("cfg")
    fn = module.add_function("f", ir.FunctionType(ir.VOID, []))
    blocks = [fn.add_block(f"b{i}") for i in range(num_blocks)]
    successors = {i: [] for i in range(num_blocks)}
    for src, dst in edges:
        successors[src].append(dst)
    for index, block in enumerate(blocks):
        succs = successors[index]
        if not succs:
            block.append(ir.Ret())
        elif len(succs) == 1:
            block.append(ir.Branch(blocks[succs[0]]))
        else:
            block.append(
                ir.CondBranch(ir.const_bool(True), blocks[succs[0]], blocks[succs[1]])
            )
    return fn, blocks


def brute_force_dominators(fn, blocks):
    """Reference: block D dominates B iff removing D disconnects B from entry."""
    entry = blocks[0]

    def reachable_avoiding(avoid):
        seen = set()
        stack = [] if entry is avoid else [entry]
        while stack:
            b = stack.pop()
            if id(b) in seen:
                continue
            seen.add(id(b))
            for s in b.successors():
                if s is not avoid and id(s) not in seen:
                    stack.append(s)
        return seen

    base = reachable_avoiding(None)
    dom = {}
    for d in blocks:
        cut = reachable_avoiding(d)
        for b in blocks:
            if id(b) not in base:
                continue
            dom[(id(d), id(b))] = (b is d) or (id(b) not in cut)
    return base, dom


class TestDominatorsBasics:
    def test_count_loop(self, count_loop):
        _, fn, v = count_loop
        dom = DominatorTree(fn)
        assert dom.dominates_block(v["entry"], v["exit"])
        assert dom.dominates_block(v["header"], v["body"])
        assert dom.dominates_block(v["header"], v["exit"])
        assert not dom.dominates_block(v["body"], v["exit"])
        assert dom.immediate_dominator(v["body"]) is v["header"]
        assert dom.immediate_dominator(v["entry"]) is None

    def test_instruction_dominance_same_block(self, count_loop):
        _, fn, v = count_loop
        dom = DominatorTree(fn)
        assert dom.dominates(v["acc_next"], v["i_next"])
        assert not dom.dominates(v["i_next"], v["acc_next"])

    def test_dominance_frontier_of_loop(self, count_loop):
        _, fn, v = count_loop
        dom = DominatorTree(fn)
        frontier = dom.dominance_frontier()
        # The body's frontier is the header (the merge point of the back edge).
        assert id(v["header"]) in frontier[id(v["body"])]

    def test_dominated_blocks(self, count_loop):
        _, fn, v = count_loop
        dom = DominatorTree(fn)
        dominated = dom.dominated_blocks(v["header"])
        assert {b.name for b in dominated} == {"header", "body", "exit"}


class TestPostDominators:
    def test_count_loop(self, count_loop):
        _, fn, v = count_loop
        pdt = PostDominatorTree(fn)
        assert pdt.post_dominates(v["exit"], v["entry"])
        assert pdt.post_dominates(v["header"], v["body"])
        assert not pdt.post_dominates(v["body"], v["header"])

    def test_diamond(self):
        fn, blocks = build_cfg([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        pdt = PostDominatorTree(fn)
        assert pdt.post_dominates(blocks[3], blocks[0])
        assert not pdt.post_dominates(blocks[1], blocks[0])

    def test_multiple_exits(self):
        fn, blocks = build_cfg([(0, 1), (0, 2)], 3)
        pdt = PostDominatorTree(fn)
        assert not pdt.post_dominates(blocks[1], blocks[0])
        assert not pdt.post_dominates(blocks[2], blocks[0])
        assert pdt.immediate_post_dominator(blocks[0]) is None  # the sink

    def test_infinite_loop_no_exit(self):
        fn, blocks = build_cfg([(0, 1), (1, 0)], 2)
        pdt = PostDominatorTree(fn)  # must not crash
        assert not pdt.post_dominates(blocks[1], blocks[0])


@st.composite
def random_cfg(draw):
    num_blocks = draw(st.integers(min_value=2, max_value=10))
    edges = []
    for src in range(num_blocks):
        out_degree = draw(st.integers(min_value=0, max_value=2))
        targets = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_blocks - 1),
                min_size=out_degree,
                max_size=out_degree,
                unique=True,
            )
        )
        edges.extend((src, t) for t in targets)
    # Make sure block 1 is reachable-ish: add an entry edge when absent.
    if num_blocks > 1 and not any(s == 0 for s, _ in edges):
        edges.append((0, 1))
    return num_blocks, edges


class TestDominatorsPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_matches_brute_force(self, cfg):
        num_blocks, edges = cfg
        fn, blocks = build_cfg(edges, num_blocks)
        base, reference = brute_force_dominators(fn, blocks)
        dom = DominatorTree(fn)
        for d in blocks:
            for b in blocks:
                if id(b) not in base or id(d) not in base:
                    continue
                expected = reference[(id(d), id(b))]
                assert dom.dominates_block(d, b) == expected, (
                    f"dominates({d.name},{b.name}) expected {expected}"
                )

    @settings(max_examples=40, deadline=None)
    @given(random_cfg())
    def test_idom_is_a_dominator(self, cfg):
        num_blocks, edges = cfg
        fn, blocks = build_cfg(edges, num_blocks)
        dom = DominatorTree(fn)
        for b in blocks:
            parent = dom.immediate_dominator(b)
            if parent is not None:
                assert dom.dominates_block(parent, b)
                assert parent is not b
