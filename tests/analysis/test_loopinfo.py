"""Loop detection and nesting tests."""

from repro.analysis.loopinfo import LoopInfo
from repro.frontend import compile_source


def loops_of(source, fn_name="main"):
    module = compile_source(source)
    return LoopInfo(module.get_function(fn_name))


class TestLoopDetection:
    def test_single_loop(self, count_loop):
        _, fn, v = count_loop
        info = LoopInfo(fn)
        loops = info.loops()
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header is v["header"]
        assert {b.name for b in loop.blocks} == {"header", "body"}
        assert loop.latches() == [v["body"]]
        assert loop.entries() == [v["entry"]]
        assert loop.exit_blocks() == [v["exit"]]
        assert loop.exiting_blocks() == [v["header"]]

    def test_no_loops(self):
        info = loops_of("int main() { return 1; }")
        assert info.loops() == []

    def test_nesting(self):
        info = loops_of(
            """
int main() {
  int i; int j; int s = 0;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      s = s + 1;
    }
  }
  return s;
}
"""
        )
        loops = info.loops()
        assert len(loops) == 2
        outer = [l for l in loops if l.parent is None][0]
        inner = [l for l in loops if l.parent is not None][0]
        assert inner.parent is outer
        assert outer.depth() == 1 and inner.depth() == 2
        assert info.innermost_loops() == [inner]
        assert outer.contains_block(inner.header)
        assert outer.sub_loops() == [inner]

    def test_innermost_loop_of_block(self):
        info = loops_of(
            """
int main() {
  int i; int j; int s = 0;
  for (i = 0; i < 3; i = i + 1) {
    s = s + 1;
    for (j = 0; j < 3; j = j + 1) { s = s + 2; }
  }
  return s;
}
"""
        )
        inner = info.innermost_loops()[0]
        assert info.loop_of(inner.header) is inner
        assert info.loop_depth(inner.header) == 2

    def test_sibling_loops(self):
        info = loops_of(
            """
int main() {
  int i; int s = 0;
  for (i = 0; i < 3; i = i + 1) { s = s + 1; }
  for (i = 0; i < 4; i = i + 1) { s = s + 2; }
  return s;
}
"""
        )
        loops = info.loops()
        assert len(loops) == 2
        assert all(l.parent is None for l in loops)

    def test_while_vs_do_while_shape(self):
        from repro.core.loopstructure import LoopStructure

        info = loops_of("int main() { int i = 0; while (i < 5) { i = i + 1; } return i; }")
        structure = LoopStructure(info.loops()[0])
        assert structure.is_while_shaped()
        assert not structure.is_do_while_shaped()

        info = loops_of("int main() { int i = 0; do { i = i + 1; } while (i < 5); return i; }")
        structure = LoopStructure(info.loops()[0])
        assert structure.is_do_while_shaped()

    def test_multi_exit_loop(self):
        info = loops_of(
            """
int main() {
  int i = 0;
  while (i < 100) {
    if (i == 7) { break; }
    i = i + 1;
  }
  return i;
}
"""
        )
        loop = info.loops()[0]
        assert len(loop.exiting_blocks()) == 2

    def test_loop_instructions_iteration(self, count_loop):
        _, fn, v = count_loop
        loop = LoopInfo(fn).loops()[0]
        names = {i.name for i in loop.instructions() if i.name}
        assert {"i", "acc", "cmp"} <= names
        assert loop.num_instructions() == 7
