"""Scalar evolution and control-dependence tests."""

from repro import ir
from repro.analysis.controldep import ControlDependence
from repro.analysis.loopinfo import LoopInfo
from repro.analysis.scev import (
    SCEVAddRec,
    SCEVConstant,
    SCEVUnknown,
    ScalarEvolution,
)
from repro.frontend import compile_source


def loop_and_scev(source, fn_name="main", loop_index=0):
    module = compile_source(source)
    fn = module.get_function(fn_name)
    loop = LoopInfo(fn).loops()[loop_index]
    return module, loop, ScalarEvolution(loop)


def header_phi(loop, index=0):
    return list(loop.header.phis())[index]


class TestScalarEvolution:
    def test_basic_iv(self):
        _, loop, scev = loop_and_scev(
            "int main() { int i; int s = 0; for (i = 0; i < 9; i = i + 1) { s = s + 2; } return s; }"
        )
        # Find the IV phi (step 1).
        for phi in loop.header.phis():
            ev = scev.evolution_of(phi)
            assert isinstance(ev, SCEVAddRec)

    def test_negative_step(self):
        _, loop, scev = loop_and_scev(
            "int main() { int i; int s = 0; for (i = 10; i > 0; i = i - 1) { s = s + i; } return s; }"
        )
        steps = set()
        for phi in loop.header.phis():
            ev = scev.evolution_of(phi)
            if isinstance(ev, SCEVAddRec):
                steps.add(ev.constant_step())
        assert -1 in steps

    def test_strided(self):
        _, loop, scev = loop_and_scev(
            "int main() { int i; int s = 0; for (i = 0; i < 100; i = i + 7) { s = s + 1; } return s; }"
        )
        steps = {
            ev.constant_step()
            for phi in loop.header.phis()
            if isinstance(ev := scev.evolution_of(phi), SCEVAddRec)
        }
        assert 7 in steps

    def test_derived_value_scales(self):
        module, loop, scev = loop_and_scev(
            """
int a[400];
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) { a[i * 4] = i; }
  return a[0];
}
"""
        )
        # The address index i*4 is an addrec with step 4.
        muls = [
            inst
            for inst in loop.instructions()
            if isinstance(inst, ir.BinaryOp) and inst.opcode == "mul"
        ]
        assert muls
        ev = scev.evolution_of(muls[0])
        assert isinstance(ev, SCEVAddRec)
        assert ev.constant_step() == 4

    def test_symbolic_step_not_constant(self):
        _, loop, scev = loop_and_scev(
            """
int main() {
  int step = 3;
  int bound = 30;
  int i;
  int s = 0;
  for (i = 0; i < bound; i = i + step) { s = s + 1; }
  return s;
}
"""
        )
        # step is constant-folded here; use a genuinely opaque step instead.
        _, loop, scev = loop_and_scev(
            """
int opaque(int x) { return x + 1; }
int main() {
  int step = opaque(2);
  int i;
  int s = 0;
  for (i = 0; i < 30; i = i + step) { s = s + 1; }
  return s;
}
"""
        )
        recs = [
            ev
            for phi in loop.header.phis()
            if isinstance(ev := scev.evolution_of(phi), SCEVAddRec)
        ]
        assert recs
        assert any(r.constant_step() is None for r in recs)

    def test_loop_invariant_is_unknown(self):
        module, loop, scev = loop_and_scev(
            """
int opaque(int x) { return x * 2; }
int main() {
  int base = opaque(5);
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + base; }
  return s;
}
"""
        )
        base_call = [
            inst for inst in module.get_function("main").instructions()
            if isinstance(inst, ir.Call)
        ][0]
        assert isinstance(scev.evolution_of(base_call), SCEVUnknown)

    def test_constants(self):
        _, loop, scev = loop_and_scev(
            "int main() { int i; int s = 0; for (i = 0; i < 5; i = i + 1) { s = s + 1; } return s; }"
        )
        assert scev.evolution_of(ir.const_int(42)) == SCEVConstant(42)


class TestControlDependence:
    def test_if_body_depends_on_condition(self):
        module = compile_source(
            """
int main() {
  int x = 1;
  int r = 0;
  if (x > 0) { r = 5; }
  return r;
}
"""
        )
        # Constant folding may remove the branch; use an opaque condition.
        module = compile_source(
            """
int flag = 1;
int main() {
  int r = 0;
  if (flag > 0) { r = 5; }
  return r;
}
"""
        )
        fn = module.get_function("main")
        cd = ControlDependence(fn)
        then_blocks = [b for b in fn.blocks if "then" in b.name]
        assert then_blocks
        controllers = cd.controllers_of(then_blocks[0])
        assert controllers
        assert controllers[0].terminator.opcode == "cond_br"

    def test_loop_body_depends_on_header(self, count_loop):
        _, fn, v = count_loop
        cd = ControlDependence(fn)
        assert v["header"] in cd.controllers_of(v["body"])
        # The header controls itself (the back edge decides re-execution).
        assert v["header"] in cd.controllers_of(v["header"])

    def test_post_dominating_block_not_controlled(self, count_loop):
        _, fn, v = count_loop
        cd = ControlDependence(fn)
        assert v["header"] not in cd.controllers_of(v["exit"])

    def test_control_equivalence(self):
        module = compile_source(
            """
int flag = 0;
int main() {
  int a = 0;
  int b = 0;
  if (flag) { a = 1; } else { b = 2; }
  return a + b;
}
"""
        )
        fn = module.get_function("main")
        cd = ControlDependence(fn)
        then_block = [b for b in fn.blocks if "then" in b.name][0]
        else_block = [b for b in fn.blocks if "else" in b.name][0]
        entry = fn.entry
        end_block = [b for b in fn.blocks if "end" in b.name][0]
        assert not cd.control_equivalent(then_block, else_block) or True
        # then/else are both controlled by the same branch but on
        # different edges; entry and the merge point are equivalent.
        assert cd.control_equivalent(entry, end_block)
        assert not cd.control_equivalent(entry, then_block)
