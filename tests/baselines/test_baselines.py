"""Baseline ("vanilla LLVM") implementations behave as the paper describes:
correct but weaker than the NOELLE layer."""

from repro.analysis.aa import BasicAliasAnalysis
from repro.analysis.dominators import DominatorTree
from repro.analysis.loopinfo import LoopInfo
from repro.baselines import (
    ConservativeParallelizer,
    count_governing_ivs_llvm,
    dependence_statistics,
    find_governing_iv_llvm,
    invariants_llvm,
    licm_llvm_function,
)
from repro.core import Noelle
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine


class TestLLVMInvariants:
    def test_simple_invariant_found(self):
        module = compile_source(
            """
int g = 4;
int a[10];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { a[i] = g; }
  return a[0];
}
"""
        )
        fn = module.get_function("main")
        dom = DominatorTree(fn)
        loop = LoopInfo(fn, dom).loops()[0]
        found = invariants_llvm(loop, dom, BasicAliasAnalysis())
        assert any(i.opcode == "load" for i in found)

    def test_no_recursion_through_chains(self):
        module = compile_source(
            """
int g = 4;
int a[10];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    int k = g * 2;
    int m = k + 1;
    a[i] = m;
  }
  return a[0];
}
"""
        )
        fn = module.get_function("main")
        dom = DominatorTree(fn)
        loop = LoopInfo(fn, dom).loops()[0]
        llvm_found = invariants_llvm(loop, dom, BasicAliasAnalysis())
        noelle_found = Noelle(module).loop_of(loop).invariants.invariants()
        # Algorithm 1 line one ("operand defined in L -> False") loses the
        # chain; Algorithm 2 keeps it.
        assert len(llvm_found) < len(noelle_found)


class TestLLVMInduction:
    def test_do_while_found(self):
        module = compile_source(
            "int main() { int i = 0; do { i = i + 1; } while (i < 9); return i; }"
        )
        loop = LoopInfo(module.get_function("main")).loops()[0]
        iv = find_governing_iv_llvm(loop)
        assert iv is not None and iv.step == 1

    def test_while_shape_missed(self):
        module = compile_source(
            "int main() { int i = 0; while (i < 9) { i = i + 1; } return i; }"
        )
        loop = LoopInfo(module.get_function("main")).loops()[0]
        assert find_governing_iv_llvm(loop) is None

    def test_variable_bound_rejected(self):
        module = compile_source(
            """
int bound = 5;
int main() {
  int i = 0;
  int limit;
  do {
    limit = bound + i;
    i = i + 1;
  } while (i < limit);
  return i;
}
"""
        )
        loop = LoopInfo(module.get_function("main")).loops()[0]
        assert find_governing_iv_llvm(loop) is None

    def test_count_across_workloads_matches_paper_shape(self):
        # NOELLE finds dramatically more governing IVs (paper: 385 vs 11).
        from repro.workloads import all_workloads

        llvm_total = 0
        noelle_total = 0
        for workload in all_workloads()[:8]:
            module = workload.compile()
            noelle = Noelle(module)
            for fn in module.defined_functions():
                for loop in LoopInfo(fn).loops():
                    if find_governing_iv_llvm(loop) is not None:
                        llvm_total += 1
                    if noelle.loop_of(loop).governing_iv() is not None:
                        noelle_total += 1
        assert noelle_total > 4 * max(llvm_total, 1)


class TestLLVMLICM:
    def test_hoists_and_preserves(self):
        source = """
int g = 3;
int a[40];
int main() {
  int i;
  for (i = 0; i < 40; i = i + 1) { a[i] = g + i; }
  return a[7];
}
"""
        baseline = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        hoisted = licm_llvm_function(module.get_function("main"))
        assert hoisted >= 1
        result = Interpreter(module).run()
        assert result.return_value == baseline.return_value


class TestDependenceStatistics:
    def test_noelle_disproves_more(self):
        source = """
int a[30];
int b[30];
void kernel(int *p, int *q, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { q[i] = p[i] * 2; }
}
int main() { kernel(a, b, 30); return b[4]; }
"""
        module = compile_source(source)
        stats = dependence_statistics(module)
        assert stats["queries"] > 0
        assert stats["noelle_disproved"] > stats["llvm_disproved"]
        assert stats["noelle_fraction"] <= 1.0


class TestConservativeParallelizer:
    WHILE_SHAPED = """
int a[500];
int main() {
  int i = 0;
  while (i < 500) { a[i] = i * 2; i = i + 1; }
  print_int(a[9]);
  return a[9];
}
"""

    def test_rejects_while_shaped_loops(self):
        module = compile_source(self.WHILE_SHAPED)
        parallelizer = ConservativeParallelizer(module)
        assert parallelizer.run() == 0
        report = parallelizer.report()
        assert any(reason is not None for _, reason in report)

    def test_rejects_loops_with_calls(self):
        source = """
int a[100];
int work(int x) { return x * 2; }
int main() {
  int i = 0;
  do { a[i] = work(i); i = i + 1; } while (i < 100);
  return a[3];
}
"""
        module = compile_source(source)
        assert ConservativeParallelizer(module).run() == 0

    def test_accepts_canonical_do_while(self):
        source = """
int a[400];
int main() {
  int i = 0;
  do { a[i] = i * 3; i = i + 1; } while (i < 400);
  print_int(a[11]);
  return a[11];
}
"""
        baseline = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        parallelizer = ConservativeParallelizer(module)
        count = parallelizer.run()
        assert count == 1  # exactly the textbook shape it supports
        result = ParallelMachine(module, num_cores=8).run()
        assert result.output == baseline.output
