"""Artifact cache: store semantics, hydration fidelity, invalidation."""

import json
import os

import pytest

from repro import cache
from repro.cache.store import ArtifactStore, _fn_filename
from repro.core.noelle import Noelle
from repro.interp.engine import engine_for
from repro.interp.interp import Interpreter
from repro.ir import print_module
from repro.perf import STATS
from repro.workloads import get


@pytest.fixture
def store(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    monkeypatch.setenv("NOELLE_CACHE_DIR", str(root))
    # Engine plans only exist under the compiled engine; pin it so the
    # plan-file assertions hold in the NOELLE_ENGINE=reference matrix.
    monkeypatch.setenv("NOELLE_ENGINE", "compiled")
    yield cache.get_store()


def _publish_crc32():
    """Compile, analyze, run, and publish crc32; returns its key."""
    module = cache.cached_compile(get("crc32").source, "crc32")
    noelle = Noelle(module)
    cache.attach(noelle)
    noelle.pdg().materialize()
    result = Interpreter(module).run()
    cache.publish_artifacts(module, noelle)
    return cache.module_key(module), result


def test_disabled_without_env(monkeypatch):
    monkeypatch.delenv("NOELLE_CACHE_DIR", raising=False)
    assert cache.get_store() is None
    assert not cache.enabled()
    # front doors fall back to the plain compile path
    module = cache.cached_compile(get("crc32").source, "crc32")
    assert module.functions


def test_miss_then_hit(store):
    before = STATS.get("cache.hits")
    key, _ = _publish_crc32()
    assert store.has_entry(key)
    module2 = cache.cached_compile(get("crc32").source, "crc32")
    assert STATS.get("cache.hits") == before + 1
    assert cache.module_key(module2) == key


def test_warm_hydration_is_byte_identical(store):
    key, cold = _publish_crc32()
    module = cache.cached_compile(get("crc32").source, "crc32")
    noelle = Noelle(module)
    cache.attach(noelle)
    # PDG hydrated without touching alias analysis
    assert noelle._pdg is not None
    assert noelle._aa is None
    # engine plans hydrated: the run does zero compiles
    compiles_before = STATS.get("engine.compiles")
    warm = Interpreter(module).run()
    assert STATS.get("engine.compiles") == compiles_before
    assert warm.output == cold.output
    assert warm.steps == cold.steps
    assert warm.cycles == cold.cycles
    # hydrated PDG matches a fresh build
    fresh = Noelle(cache.cached_compile(get("crc32").source, "crc32"))
    fresh_pdg = fresh.pdg()
    fresh_pdg.materialize()
    warm_pdg = noelle.pdg()
    warm_pdg.materialize()

    def edges(pdg):
        return sorted(
            (str(e.src.value), str(e.dst.value), e.kind, e.data_kind,
             e.is_memory, e.is_must)
            for e in pdg._edges
        )

    assert edges(warm_pdg) == edges(fresh_pdg)
    assert warm_pdg.memory_queries == fresh_pdg.memory_queries
    assert warm_pdg.memory_disproved == fresh_pdg.memory_disproved


def test_poisoned_module_is_evicted_as_miss(store):
    key, _ = _publish_crc32()
    nir_path = os.path.join(store.entry_dir(key), "module.nir")
    with open(nir_path, "r+b") as handle:
        handle.seek(30)
        byte = handle.read(1)
        handle.seek(30)
        handle.write(bytes([byte[0] ^ 0xFF]))
    poisoned_before = STATS.get("cache.poisoned")
    misses_before = STATS.get("cache.misses")
    module = cache.cached_compile(get("crc32").source, "crc32")
    # hash mismatch: treated as a miss, entry evicted, recompiled
    assert STATS.get("cache.poisoned") == poisoned_before + 1
    assert STATS.get("cache.misses") == misses_before + 1
    assert module.functions
    # the recompile republished a clean entry
    assert store.has_entry(key)
    assert store.load_module(key) is not None


def test_meta_version_skew_is_evicted(store):
    key, _ = _publish_crc32()
    meta_path = os.path.join(store.entry_dir(key), "meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    meta["format"] = 999
    with open(meta_path, "w") as handle:
        json.dump(meta, handle)
    assert store.load_module(key) is None
    assert not store.has_entry(key)


def test_per_function_invalidate_evicts_only_that_shard(store):
    key, _ = _publish_crc32()
    module = cache.cached_compile(get("crc32").source, "crc32")
    noelle = Noelle(module)
    binding = cache.attach(noelle)
    names = [fn.name for fn in module.defined_functions()]
    assert len(names) >= 2
    victim = module.functions[names[0]]
    victim_plan = os.path.join(
        store.entry_dir(key), "engine", _fn_filename(names[0]) + ".plan"
    )
    other_plan = os.path.join(
        store.entry_dir(key), "engine", _fn_filename(names[1]) + ".plan"
    )
    assert os.path.exists(victim_plan) and os.path.exists(other_plan)
    noelle.invalidate(victim)
    assert not os.path.exists(victim_plan)
    assert os.path.exists(other_plan)
    assert names[0] in binding.dirty
    # dirty function is never published back
    cache.publish_artifacts(module, noelle)
    assert not os.path.exists(victim_plan)


def test_full_invalidate_severs_binding(store):
    _publish_crc32()
    module = cache.cached_compile(get("crc32").source, "crc32")
    noelle = Noelle(module)
    cache.attach(noelle)
    assert noelle._cache_binding is not None
    noelle.invalidate()
    assert noelle._cache_binding is None


def test_corrupt_shard_and_plan_skipped(store):
    key, _ = _publish_crc32()
    for sub in ("pdg", "engine"):
        directory = os.path.join(store.entry_dir(key), sub)
        victim = os.path.join(directory, sorted(os.listdir(directory))[0])
        with open(victim, "wb") as handle:
            handle.write(b"not a pickle")
    # corrupt artifacts are skipped, not fatal
    module = cache.cached_compile(get("crc32").source, "crc32")
    noelle = Noelle(module)
    cache.attach(noelle)
    result = Interpreter(module).run()
    assert result.output


def test_clear_and_gc(store):
    key, _ = _publish_crc32()
    # orphan an entry by dropping its meta.json
    os.unlink(os.path.join(store.entry_dir(key), "meta.json"))
    pruned = store.gc()
    assert pruned["pruned_entries"] == 1
    assert pruned["pruned_aliases"] == 1
    assert store.stats()["entries"] == 0
    _publish_crc32()
    assert store.stats()["entries"] == 1
    assert store.clear() > 0
    assert store.stats()["entries"] == 0


def test_store_stats_shape(store):
    key, _ = _publish_crc32()
    info = store.stats()
    assert info["entries"] == 1
    assert info["aliases"] == 1
    assert info["pdg_shards"] >= 1
    assert info["engine_plans"] >= 1
    assert info["total_bytes"] > 0


def test_concurrent_safe_filenames():
    assert _fn_filename("main") == "main"
    weird = _fn_filename("a/b c%d" + "x" * 100)
    assert "/" not in weird and " " not in weird
    assert len(weird) <= 80
    assert _fn_filename("a/b") != _fn_filename("a_b")


def test_transformed_module_not_poisoned_by_cache(store):
    """A licm-transformed module runs identically with the cache on."""
    from repro.robust.passmanager import PassManager

    _publish_crc32()
    module = cache.cached_compile(get("crc32").source, "crc32")
    noelle = Noelle(module)
    cache.attach(noelle)
    manager = PassManager(noelle)
    manager.run_registered("licm")
    noelle.invalidate()
    transformed = Interpreter(module).run()

    reference_module = get("crc32").compile()
    ref_noelle = Noelle(reference_module)
    ref_manager = PassManager(ref_noelle)
    ref_manager.run_registered("licm")
    ref_noelle.invalidate()
    reference = Interpreter(reference_module).run()
    assert transformed.output == reference.output
    assert print_module(module) == print_module(reference_module)
