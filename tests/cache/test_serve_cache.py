"""Serve integration: workers share the artifact cache across restarts."""

import json
import threading
import urllib.error
import urllib.request

from contextlib import contextmanager

import pytest

from repro.serve.daemon import create_server, serve_forever
from repro.workloads import registry


class Client:
    def __init__(self, server):
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())


@contextmanager
def serving(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("deadline_s", 60.0)
    server = create_server(port=0, **kwargs)
    thread = threading.Thread(
        target=serve_forever, args=(server,), daemon=True
    )
    thread.start()
    try:
        yield Client(server), server
    finally:
        server.shutdown()
        thread.join(timeout=30)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    monkeypatch.setenv("NOELLE_CACHE_DIR", str(root))
    return root


def test_replacement_worker_rehydrates_from_cache(cache_dir):
    source = registry.get("crc32").source
    with serving() as (client, _server):
        # cold: the first worker compiles, runs, and publishes
        status, body = client.post("/compile", {
            "session": "s", "name": "m", "source": source,
        })
        assert status == 200, body
        assert body["meta"]["cache_misses"] >= 1
        status, body = client.post("/run", {"session": "s", "name": "m"})
        assert status == 200 and body["result"]["exit_code"] == 0
        cold_output = body["result"]["output"]

        # kill the worker mid-request: session state dies with it
        status, body = client.post("/run", {
            "session": "s", "name": "m", "faults": "serve_kill:1",
        })
        assert status == 502
        assert body["error"]["kind"] == "WorkerCrashed"

        # the replacement worker hydrates the module from the cache
        status, body = client.post("/compile", {
            "session": "s", "name": "m", "source": source,
        })
        assert status == 200, body
        assert body["meta"]["cache_hits"] >= 1
        assert body["meta"]["cache_misses"] == 0
        status, body = client.post("/run", {"session": "s", "name": "m"})
        assert status == 200
        assert body["result"]["output"] == cold_output
        # hydrated engine plans: nothing recompiled on the warm run
        assert body["meta"]["engine_compiles"] == 0

        # /stats exposes per-worker cache totals
        status, stats = client.get("/stats")
        assert status == 200
        worker = stats["workers"][0]
        assert worker["cache_hits"] >= 1
        assert worker["cache_misses"] >= 1
        assert worker["restarts"] == 1


def test_inline_ir_requests_use_the_cache(cache_dir):
    from repro.frontend.codegen import compile_source
    from repro.ir import print_module

    text = print_module(compile_source(registry.get("crc32").source, "m"))
    with serving() as (client, _server):
        status, body = client.post("/run", {"ir": text})
        assert status == 200, body
        assert body["meta"]["cache_misses"] >= 1
        first = body["result"]["output"]
        status, body = client.post("/run", {"ir": text})
        assert status == 200
        assert body["meta"]["cache_hits"] >= 1
        assert body["result"]["output"] == first
