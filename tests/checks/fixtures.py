"""Shared fixtures for the checker and oracle tests.

The centerpiece is a HELIX-parallelized kernel whose loop carries a
genuine cross-iteration dependence (the ``acc`` accumulator) next to
fully independent array traffic.  HELIX brackets the accumulator in a
sequential segment; erasing those markers yields the seeded "buggy
parallelization" the acceptance tests must catch both statically (an
ERROR from the race checker) and dynamically (the oracle observes the
conflict).
"""

from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.ir.instructions import Call
from repro.tools import remove_loop_carried_dependences
from repro.xforms import DOALL, DSWP, HELIX

HELIX_KERNEL_SOURCE = """
double acc;
double xs[256];
double ys[256];

void kernel(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    double v = xs[i];
    double a = v * 1.1 + 0.5;
    a = a * a + v;
    a = a * 0.37 + 1.25;
    a = a * a + 0.125;
    a = a * 0.93 + v * 0.07;
    a = a * a + 2.0;
    ys[i] = a;
    acc = acc + v;
  }
}

int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    xs[i] = (double)(i % 17) * 0.25;
  }
  kernel(256);
  print_float(acc);
  print_float(ys[100]);
  return 0;
}
"""

#: Independent iterations: eligible for DOALL.
DOALL_SOURCE = """
int xs[400];
int ys[400];
int main() {
  int i;
  for (i = 0; i < 400; i = i + 1) { xs[i] = (i * 17 + 3) % 101; }
  for (i = 0; i < 400; i = i + 1) { ys[i] = xs[i] * 2 + 1; }
  print_int(ys[123]);
  return 0;
}
"""

#: A chain of dependent computations: a natural DSWP pipeline.
PIPELINE_SOURCE = """
int main() {
  int i; int s = 0;
  for (i = 0; i < 700; i = i + 1) {
    int a = (i * 13 + 5) % 101;
    int b = (a * a + 7) % 97;
    int c = (b * 31 + a) % 89;
    s = s + c;
  }
  print_int(s);
  return s;
}
"""

SEGMENT_MARKERS = ("helix_seq_begin", "helix_seq_end")

TASK_NAME = "kernel.helix.task"


def build_helix_fixture():
    """Compile and HELIX-parallelize the kernel; returns (module, noelle)."""
    module = compile_source(HELIX_KERNEL_SOURCE, "helix-fixture")
    noelle = Noelle(module)
    target = next(
        loop for loop in noelle.loops()
        if loop.structure.function.name == "kernel"
    )
    HELIX(noelle, 4).parallelize(target)
    noelle.invalidate()
    return module, noelle


def segment_marker_calls(task):
    """Every helix_seq_begin/end call of ``task``, in program order."""
    return [
        inst
        for inst in task.instructions()
        if isinstance(inst, Call)
        and inst.called_function() is not None
        and inst.called_function().name in SEGMENT_MARKERS
    ]


def drop_sequential_segments(module, noelle):
    """Erase the HELIX sequential-segment markers: the seeded bug."""
    task = module.get_function(TASK_NAME)
    for inst in segment_marker_calls(task):
        inst.erase_from_parent()
    noelle.invalidate()
    return task


def parallelize_source(source, technique, cores=4, stages=3):
    """Compile + profile + rm-lc + parallelize; returns (module, noelle,
    number of parallelized loops)."""
    module = compile_source(source)
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    remove_loop_carried_dependences(noelle)
    if technique == "doall":
        count = DOALL(noelle, cores).run()
    elif technique == "helix":
        count = HELIX(noelle, cores).run()
    else:
        count = DSWP(noelle, num_stages=stages).run()
    noelle.invalidate()
    return module, noelle, count
