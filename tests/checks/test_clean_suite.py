"""Satellite: every registry workload passes the full checker suite
before and after the HELIX pipeline, under both execution engines."""

import pytest

from repro.checks import has_errors, run_checkers
from repro.tools.pipeline import helix_pipeline
from repro.workloads.registry import all_workloads, get


@pytest.mark.parametrize("engine", ["compiled", "reference"])
@pytest.mark.parametrize("workload", [w.name for w in all_workloads()])
def test_checker_suite_clean_before_and_after_helix(
    workload, engine, monkeypatch
):
    monkeypatch.setenv("NOELLE_ENGINE", engine)
    descriptor = get(workload)
    module = descriptor.compile()
    before = run_checkers(module)
    assert not has_errors(before), [str(d) for d in before]

    parallel = helix_pipeline([descriptor.source], num_cores=4,
                              fault_plan=None)
    after = run_checkers(parallel)
    assert not has_errors(after), [str(d) for d in after]
