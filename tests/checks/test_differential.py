"""The differential soundness contract of the race detector.

For every registry workload (HELIX-parallelized the same way the
pipeline does it) the static detector must *cover* every race the
dynamic oracle observes — zero false negatives.  Over-approximation is
allowed and surfaces only as the printed false-positive rate (pytest
shows it with ``-s``; the warnings are SCEV imprecision after chunking
that the oracle never confirms).
"""

import pytest

from repro.checks import run_checkers
from repro.checks.oracle import RaceOracle
from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.robust.passmanager import PassManager
from repro.workloads.registry import all_workloads, get
from tests.checks.fixtures import build_helix_fixture, drop_sequential_segments


def helix_parallelize(module):
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    manager = PassManager(noelle, fault_plan=None)
    manager.run_registered("rm-lc-dependences")
    manager.run_registered("helix", num_cores=4)
    return noelle


def differential(module, noelle, cores=4):
    """Run static + dynamic analyses; assert every observed race is
    covered by a static race finding.  Returns (diagnostics, oracle)."""
    diagnostics = run_checkers(module, noelle)
    static_races = [d for d in diagnostics if d.checker == "races"]
    oracle = RaceOracle(module, num_cores=cores)
    result = oracle.run()
    assert result.trapped is None, result.trapped
    for race in oracle.races:
        covered = any(
            d.pass_name == race.kind and d.function == race.task
            for d in static_races
        )
        assert covered, f"oracle saw [{race}] but the static detector is silent"
    confirmed = {(race.kind, race.task) for race in oracle.races}
    unconfirmed = [
        d for d in static_races
        if (d.pass_name, d.function) not in confirmed
    ]
    rate = len(unconfirmed) / len(static_races) if static_races else 0.0
    print(
        f"static={len(static_races)} dynamic={len(oracle.races)} "
        f"false-positive-rate={rate:.2f}"
    )
    return diagnostics, oracle


@pytest.mark.parametrize(
    "workload", [w.name for w in all_workloads()]
)
def test_zero_false_negatives_on_registry_workloads(workload):
    module = get(workload).compile()
    noelle = helix_parallelize(module)
    diagnostics, oracle = differential(module, noelle)
    # The pipeline's parallelizations are correct: the oracle must stay
    # silent, and so must the static detector at the ERROR level.
    assert oracle.races == []
    assert not any(
        d.checker == "races" and d.severity == "error" for d in diagnostics
    )


def test_seeded_bug_is_caught_by_both_sides():
    module, noelle = build_helix_fixture()
    clean_diags, clean_oracle = differential(module, noelle)
    assert clean_oracle.races == []
    assert not any(d.severity == "error" for d in clean_diags)

    drop_sequential_segments(module, noelle)
    diagnostics, oracle = differential(module, noelle)
    assert oracle.races, "the seeded bug must race dynamically"
    errors = [
        d for d in diagnostics
        if d.checker == "races" and d.severity == "error"
    ]
    assert errors, "the seeded bug must be caught statically as ERROR"
    assert all(d.pass_name == "helix" for d in errors)
