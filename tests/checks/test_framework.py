"""Checker framework: diagnostics, registry, driver, gate flag."""

import pytest

from repro import ir
from repro.checks import (
    SEVERITIES,
    CheckFailure,
    Checker,
    Diagnostic,
    all_checker_names,
    checks_enabled,
    has_errors,
    register_checker,
    run_checkers,
    worst_severity,
)
from repro.perf import STATS
from tests.conftest import build_count_loop


class TestDiagnostic:
    def test_round_trips_through_dict(self):
        original = Diagnostic("races", "error", "boom", function="f",
                              location="%x", pass_name="helix")
        data = original.to_dict()
        assert data == {
            "checker": "races", "severity": "error", "message": "boom",
            "function": "f", "location": "%x", "pass": "helix",
        }
        assert Diagnostic.from_dict(data).to_dict() == data

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("lint", "fatal", "nope")

    def test_str_names_checker_and_location(self):
        located = Diagnostic("lint", "info", "dead value",
                             function="f", location="%v")
        assert str(located) == "info: [lint] f:%v: dead value"
        assert str(Diagnostic("lint", "info", "m")) == "info: [lint] <module>: m"

    def test_severity_helpers(self):
        info = Diagnostic("a", "info", "x")
        warning = Diagnostic("a", "warning", "x")
        error = Diagnostic("a", "error", "x")
        assert SEVERITIES == ("info", "warning", "error")
        assert [d.rank for d in (info, warning, error)] == [0, 1, 2]
        assert worst_severity([]) is None
        assert worst_severity([info, warning]) == "warning"
        assert worst_severity([warning, error, info]) == "error"
        assert not has_errors([info, warning])
        assert has_errors([info, error])


class TestRegistry:
    def test_builtin_checkers_are_registered(self):
        assert set(all_checker_names()) >= {"races", "sanitizer", "lint"}

    def test_register_rejects_default_name(self):
        with pytest.raises(ValueError, match="unique name"):
            @register_checker
            class Nameless(Checker):
                pass

    def test_checks_enabled_parses_environment(self):
        assert not checks_enabled({})
        assert not checks_enabled({"NOELLE_CHECKS": ""})
        assert not checks_enabled({"NOELLE_CHECKS": "0"})
        assert checks_enabled({"NOELLE_CHECKS": "1"})
        assert checks_enabled({"NOELLE_CHECKS": "yes"})


def make_dead_value_module():
    module = ir.Module("m")
    fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, _ = ir.build_function(fn)
    builder.add(fn.args[0], ir.const_int(1), "dead")
    builder.ret(fn.args[0])
    ir.verify_module(module)
    return module


class TestDriver:
    def test_unknown_checker_rejected(self):
        module, _, _ = build_count_loop()
        with pytest.raises(ValueError, match="unknown checker"):
            run_checkers(module, names=["races", "bogus"])

    def test_clean_module_has_no_findings(self):
        module, _, _ = build_count_loop()
        assert run_checkers(module) == []

    def test_subset_selection(self):
        module = make_dead_value_module()
        all_findings = run_checkers(module)
        lint_only = run_checkers(module, names=["lint"])
        assert [d.checker for d in lint_only] == ["lint"]
        assert len(lint_only) <= len(all_findings)
        assert run_checkers(module, names=["races"]) == []

    def test_driver_feeds_perf_stats(self):
        module = make_dead_value_module()
        before = STATS.snapshot()
        findings = run_checkers(module)
        after = STATS.snapshot()
        assert findings  # the dead value
        assert after.get("checks.runs", 0) == before.get("checks.runs", 0) + 1
        assert (
            after.get("checks.diagnostics.info", 0)
            >= before.get("checks.diagnostics.info", 0) + 1
        )
        # info findings alone do not mark the module as failed
        assert (
            after.get("checks.failed_modules", 0)
            == before.get("checks.failed_modules", 0)
        )
        assert "checks.total" in STATS.timers
        assert "checks.lint" in STATS.timers


class TestCheckFailure:
    def test_previews_the_first_errors(self):
        diagnostics = [
            Diagnostic("races", "error", f"conflict {i}") for i in range(5)
        ]
        diagnostics.append(Diagnostic("lint", "info", "benign"))
        failure = CheckFailure(diagnostics)
        assert "5 checker error(s)" in str(failure)
        assert "conflict 0" in str(failure)
        assert "(2 more)" in str(failure)
        assert failure.diagnostics == diagnostics
