"""IR lint: unreachable blocks, dead values, non-canonical phis."""

from repro import ir
from repro.checks.lint import IRLint
from repro.core import Noelle
from tests.conftest import build_count_loop


def lint(module):
    return IRLint().run(module, Noelle(module))


def test_canonical_loop_is_clean():
    module, _, _ = build_count_loop()
    assert lint(module) == []


def test_unreachable_block_is_a_warning():
    module = ir.Module("m")
    fn = module.add_function("f", ir.FunctionType(ir.VOID, []))
    builder, _ = ir.build_function(fn)
    builder.ret()
    orphan = fn.add_block("orphan")
    builder.position_at_end(orphan)
    builder.ret()
    ir.verify_module(module)  # legal IR: the finding is advisory
    findings = lint(module)
    assert [d.severity for d in findings] == ["warning"]
    assert "unreachable" in findings[0].message
    assert findings[0].location == orphan.ref()


def test_dead_value_is_an_info():
    module = ir.Module("m")
    fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, _ = ir.build_function(fn)
    dead = builder.add(fn.args[0], ir.const_int(1), "dead")
    builder.ret(fn.args[0])
    ir.verify_module(module)
    findings = lint(module)
    assert [d.severity for d in findings] == ["info"]
    assert "never used" in findings[0].message
    assert findings[0].location == dead.ref()


def test_single_incoming_phi_is_an_info():
    module = ir.Module("m")
    fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, entry = ir.build_function(fn)
    tail = fn.add_block("tail")
    builder.br(tail)
    builder.position_at_end(tail)
    phi = builder.phi(ir.I64, "copy")
    phi.add_incoming(fn.args[0], entry)
    builder.ret(phi)
    ir.verify_module(module)
    findings = lint(module)
    assert [d.severity for d in findings] == ["info"]
    assert "single incoming edge" in findings[0].message


def test_identical_incoming_values_are_an_info():
    module = ir.Module("m")
    fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, entry = ir.build_function(fn)
    then = fn.add_block("then")
    join = fn.add_block("join")
    cond = builder.icmp("eq", fn.args[0], ir.const_int(0), "cond")
    builder.cond_br(cond, then, join)
    builder.position_at_end(then)
    builder.br(join)
    builder.position_at_end(join)
    phi = builder.phi(ir.I64, "same")
    phi.add_incoming(fn.args[0], entry)
    phi.add_incoming(fn.args[0], then)
    builder.ret(phi)
    ir.verify_module(module)
    findings = lint(module)
    assert [d.severity for d in findings] == ["info"]
    assert "identical incoming values" in findings[0].message


def test_lint_never_errors():
    # A module combining all three smells still yields no ERROR findings.
    module = ir.Module("m")
    fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, _ = ir.build_function(fn)
    builder.add(fn.args[0], ir.const_int(1), "dead")
    builder.ret(fn.args[0])
    orphan = fn.add_block("orphan")
    builder.position_at_end(orphan)
    builder.ret(fn.args[0])
    findings = lint(module)
    assert len(findings) == 2
    assert all(d.severity != "error" for d in findings)
