"""The dynamic race oracle: observation, attribution, exemptions."""

from repro.checks.oracle import RaceOracle
from repro.frontend import compile_source
from repro.interp import Interpreter
from tests.checks.fixtures import (
    DOALL_SOURCE,
    HELIX_KERNEL_SOURCE,
    TASK_NAME,
    build_helix_fixture,
    drop_sequential_segments,
    parallelize_source,
)
from tests.conftest import outputs_match


def test_memory_observer_sees_every_access():
    module = compile_source(DOALL_SOURCE)
    seen = []
    interpreter = Interpreter(module)
    interpreter.memory_observer = lambda kind, address, inst: seen.append(kind)
    result = interpreter.run()
    assert result.trapped is None
    assert "store" in seen and "load" in seen


def test_clean_helix_runs_race_free():
    module, _ = build_helix_fixture()
    oracle = RaceOracle(module, num_cores=4)
    result = oracle.run()
    assert result.trapped is None
    assert oracle.races == []
    sequential = Interpreter(compile_source(HELIX_KERNEL_SOURCE)).run()
    assert outputs_match(result.output, sequential.output, rel=1e-6)


def test_clean_doall_runs_race_free():
    module, _, count = parallelize_source(DOALL_SOURCE, "doall")
    assert count >= 1
    oracle = RaceOracle(module, num_cores=4)
    result = oracle.run()
    assert result.trapped is None
    assert oracle.races == []


def test_seeded_bug_produces_observed_races():
    module, noelle = build_helix_fixture()
    drop_sequential_segments(module, noelle)
    oracle = RaceOracle(module, num_cores=4)
    result = oracle.run()
    assert result.trapped is None
    assert oracle.races
    race = oracle.races[0]
    assert race.kind == "helix"
    assert race.task == TASK_NAME
    assert race.unit_a != race.unit_b
    assert "touched by" in str(race)


def test_one_race_per_address_keeps_the_log_bounded():
    # The seeded accumulator is touched by every iteration; reporting a
    # single conflict per racy address (not every unit pair) keeps the
    # oracle's output linear in the number of racy addresses.
    module, noelle = build_helix_fixture()
    drop_sequential_segments(module, noelle)
    oracle = RaceOracle(module, num_cores=4)
    oracle.run()
    addresses = [race.address for race in oracle.races]
    assert len(addresses) == len(set(addresses))
