"""Static race detector: construct discovery, segments, verdicts."""

from repro.checks import run_checkers
from repro.checks.races import find_parallel_constructs, segment_spans
from repro.ir import parse_module, print_module
from tests.checks.fixtures import (
    DOALL_SOURCE,
    PIPELINE_SOURCE,
    TASK_NAME,
    build_helix_fixture,
    drop_sequential_segments,
    parallelize_source,
    segment_marker_calls,
)


class TestDiscovery:
    def test_helix_construct_found_structurally(self):
        module, _ = build_helix_fixture()
        constructs = find_parallel_constructs(module)
        helix = [c for c in constructs if c.kind == "helix"]
        assert len(helix) == 1
        assert helix[0].task.name == TASK_NAME
        assert helix[0].host.name == "kernel"
        # The transform also records its work as metadata — a refinement
        # for tooling, not the checker's source of truth.
        assert helix[0].task.metadata.get("noelle.parallel") == "helix"
        assert helix[0].task.metadata.get("noelle.helix.segments") >= 1

    def test_doall_construct_and_metadata(self):
        module, _, count = parallelize_source(DOALL_SOURCE, "doall")
        assert count >= 1
        doall = [c for c in find_parallel_constructs(module)
                 if c.kind == "doall"]
        assert doall
        for construct in doall:
            assert construct.task.metadata.get("noelle.parallel") == "doall"
            assert construct.stages == []

    def test_dswp_stages_recovered_from_selector(self):
        module, _, count = parallelize_source(PIPELINE_SOURCE, "dswp", stages=3)
        assert count >= 1
        dswp = [c for c in find_parallel_constructs(module) if c.kind == "dswp"]
        assert dswp
        construct = dswp[0]
        assert construct.task.metadata.get("noelle.parallel") == "dswp"
        assert len(construct.stages) >= 1
        indices = [index for index, _ in construct.stages]
        assert indices == sorted(indices)
        for index, stage_fn in construct.stages:
            assert stage_fn.metadata.get("noelle.parallel") == "dswp.stage"
            assert stage_fn.metadata.get("noelle.dswp.stage") == index

    def test_discovery_survives_print_parse_roundtrip(self):
        # Metadata does not round-trip through the printer; structural
        # discovery (dispatch callees, the selector switch) must.
        module, _ = build_helix_fixture()
        reparsed = parse_module(print_module(module), "roundtrip")
        constructs = find_parallel_constructs(reparsed)
        assert [c.kind for c in constructs] == ["helix"]
        assert constructs[0].task.name == TASK_NAME


class TestSegments:
    def test_spans_cover_the_marked_instructions(self):
        module, _ = build_helix_fixture()
        task = module.get_function(TASK_NAME)
        markers = segment_marker_calls(task)
        assert len(markers) >= 2  # at least one begin/end pair
        spans = segment_spans(task)
        assert any(span for span in spans.values())

    def test_spans_empty_after_markers_are_dropped(self):
        module, noelle = build_helix_fixture()
        task = drop_sequential_segments(module, noelle)
        assert segment_marker_calls(task) == []
        assert all(not span for span in segment_spans(task).values())


class TestVerdicts:
    def test_correct_helix_has_no_errors(self):
        module, noelle = build_helix_fixture()
        diagnostics = run_checkers(module, noelle)
        assert not any(d.severity == "error" for d in diagnostics), [
            str(d) for d in diagnostics
        ]

    def test_dropped_segments_are_an_error(self):
        module, noelle = build_helix_fixture()
        drop_sequential_segments(module, noelle)
        diagnostics = run_checkers(module, noelle)
        errors = [d for d in diagnostics
                  if d.checker == "races" and d.severity == "error"]
        assert errors, [str(d) for d in diagnostics]
        finding = errors[0]
        assert finding.pass_name == "helix"
        assert finding.function == TASK_NAME
        assert "loop-carried" in finding.message
        assert "sequential segment" in finding.message

    def test_parallelized_doall_has_no_errors(self):
        module, noelle, count = parallelize_source(DOALL_SOURCE, "doall")
        assert count >= 1
        diagnostics = run_checkers(module, noelle)
        assert not any(d.severity == "error" for d in diagnostics), [
            str(d) for d in diagnostics
        ]

    def test_parallelized_dswp_has_no_errors(self):
        module, noelle, count = parallelize_source(
            PIPELINE_SOURCE, "dswp", stages=3
        )
        assert count >= 1
        diagnostics = run_checkers(module, noelle)
        assert not any(d.severity == "error" for d in diagnostics), [
            str(d) for d in diagnostics
        ]
