"""Memory sanitizer: use-before-init and static out-of-bounds."""

from repro import ir
from repro.checks.sanitizer import MemorySanitizer
from repro.core import Noelle


def sanitize(module):
    return MemorySanitizer().run(module, Noelle(module))


def scalar_fn(module):
    fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, entry = ir.build_function(fn)
    return fn, builder, entry


class TestUseBeforeInit:
    def test_load_before_any_store_is_flagged(self):
        module = ir.Module("m")
        fn, builder, _ = scalar_fn(module)
        slot = builder.alloca(ir.I64, "slot")
        value = builder.load(slot, "v")
        builder.ret(value)
        ir.verify_module(module)
        findings = sanitize(module)
        assert [d.severity for d in findings] == ["warning"]
        assert "before it is initialized" in findings[0].message
        assert findings[0].location == value.ref()

    def test_store_then_load_is_clean(self):
        module = ir.Module("m")
        fn, builder, _ = scalar_fn(module)
        slot = builder.alloca(ir.I64, "slot")
        builder.store(ir.const_int(1), slot)
        builder.ret(builder.load(slot, "v"))
        ir.verify_module(module)
        assert sanitize(module) == []

    def test_partial_initialization_is_flagged(self):
        # Only one of two paths stores, so at the join the slot is not
        # must-initialized (intersection meet).
        module = ir.Module("m")
        fn, builder, entry = scalar_fn(module)
        slot = builder.alloca(ir.I64, "slot")
        then = fn.add_block("then")
        join = fn.add_block("join")
        cond = builder.icmp("eq", fn.args[0], ir.const_int(0), "cond")
        builder.cond_br(cond, then, join)
        builder.position_at_end(then)
        builder.store(ir.const_int(7), slot)
        builder.br(join)
        builder.position_at_end(join)
        value = builder.load(slot, "v")
        builder.ret(value)
        ir.verify_module(module)
        findings = sanitize(module)
        assert [d.severity for d in findings] == ["warning"]
        assert findings[0].location == value.ref()

    def test_initialization_on_every_path_is_clean(self):
        module = ir.Module("m")
        fn, builder, entry = scalar_fn(module)
        slot = builder.alloca(ir.I64, "slot")
        then = fn.add_block("then")
        other = fn.add_block("other")
        join = fn.add_block("join")
        cond = builder.icmp("eq", fn.args[0], ir.const_int(0), "cond")
        builder.cond_br(cond, then, other)
        builder.position_at_end(then)
        builder.store(ir.const_int(7), slot)
        builder.br(join)
        builder.position_at_end(other)
        builder.store(ir.const_int(9), slot)
        builder.br(join)
        builder.position_at_end(join)
        builder.ret(builder.load(slot, "v"))
        ir.verify_module(module)
        assert sanitize(module) == []

    def test_initializing_callee_counts(self):
        # A call that may write the slot (per mod/ref) initializes it:
        # no false positive on interprocedural initialization.
        module = ir.Module("m")
        init = module.add_function(
            "init", ir.FunctionType(ir.VOID, [ir.pointer_to(ir.I64)]), ["p"]
        )
        init_builder, _ = ir.build_function(init)
        init_builder.store(ir.const_int(3), init.args[0])
        init_builder.ret()
        fn, builder, _ = scalar_fn(module)
        slot = builder.alloca(ir.I64, "slot")
        builder.call(init, [slot])
        builder.ret(builder.load(slot, "v"))
        ir.verify_module(module)
        assert sanitize(module) == []


def array_module():
    module = ir.Module("m")
    module.add_global("arr", ir.ArrayType(ir.I64, 4))
    return module


class TestBounds:
    def test_constant_oob_load_is_an_error(self):
        module = array_module()
        fn, builder, _ = scalar_fn(module)
        arr = module.globals["arr"]
        ptr = builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(7)], "p")
        builder.ret(builder.load(ptr, "v"))
        findings = sanitize(module)
        assert [d.severity for d in findings] == ["error"]
        assert "outside [0, 4)" in findings[0].message
        assert findings[0].location == ptr.ref()

    def test_oob_address_without_dereference_is_a_warning(self):
        module = array_module()
        fn, builder, _ = scalar_fn(module)
        arr = module.globals["arr"]
        builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(4)], "p")
        builder.ret(fn.args[0])
        findings = [d for d in sanitize(module) if "out of bounds" in d.message]
        assert [d.severity for d in findings] == ["warning"]

    def test_nonzero_leading_index_steps_off_the_object(self):
        module = array_module()
        fn, builder, _ = scalar_fn(module)
        arr = module.globals["arr"]
        builder.elem_ptr(arr, [ir.const_int(1)], "p")
        builder.ret(fn.args[0])
        findings = [d for d in sanitize(module) if "out of bounds" in d.message]
        assert len(findings) == 1
        assert "steps off" in findings[0].message

    def test_in_bounds_access_is_clean(self):
        module = array_module()
        fn, builder, _ = scalar_fn(module)
        arr = module.globals["arr"]
        ptr = builder.elem_ptr(arr, [ir.const_int(0), ir.const_int(3)], "p")
        builder.ret(builder.load(ptr, "v"))
        ir.verify_module(module)
        assert sanitize(module) == []

    def test_variable_index_is_not_flagged(self):
        module = array_module()
        fn, builder, _ = scalar_fn(module)
        arr = module.globals["arr"]
        ptr = builder.elem_ptr(arr, [ir.const_int(0), fn.args[0]], "p")
        builder.ret(builder.load(ptr, "v"))
        ir.verify_module(module)
        assert sanitize(module) == []
