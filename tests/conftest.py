"""Shared fixtures and IR-construction helpers for the test suite."""

import pytest

from repro import ir


def build_count_loop(module_name="m", n=10, while_shaped=True):
    """A canonical counted loop: ``for (i = 0; i < n; i++) acc += i``.

    Returns (module, fn, dict of named values).
    """
    module = ir.Module(module_name)
    fn = module.add_function("sum", ir.FunctionType(ir.I64, [ir.I64]), ["n"])
    builder, entry = ir.build_function(fn)
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_block = fn.add_block("exit")
    builder.br(header)
    builder.position_at_end(header)
    i = builder.phi(ir.I64, "i")
    acc = builder.phi(ir.I64, "acc")
    cmp = builder.icmp("slt", i, fn.args[0], "cmp")
    builder.cond_br(cmp, body, exit_block)
    builder.position_at_end(body)
    acc_next = builder.add(acc, i, "acc.next")
    i_next = builder.add(i, ir.const_int(1), "i.next")
    builder.br(header)
    builder.position_at_end(exit_block)
    builder.ret(acc)
    i.add_incoming(ir.const_int(0), entry)
    i.add_incoming(i_next, body)
    acc.add_incoming(ir.const_int(0), entry)
    acc.add_incoming(acc_next, body)
    ir.verify_module(module)
    values = {
        "entry": entry, "header": header, "body": body, "exit": exit_block,
        "i": i, "acc": acc, "cmp": cmp, "i_next": i_next,
        "acc_next": acc_next,
    }
    return module, fn, values


@pytest.fixture
def count_loop():
    return build_count_loop()


def compile_and_run(source, entry="main", args=None, step_limit=50_000_000):
    """Compile MiniC and execute; returns the ExecutionResult."""
    from repro.frontend import compile_source
    from repro.interp import Interpreter

    module = compile_source(source)
    return Interpreter(module, step_limit=step_limit).run(entry, args)


def outputs_match(a, b, rel=1e-9):
    """Output equality with float tolerance (parallel float reductions
    re-associate)."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            scale = max(abs(float(x)), abs(float(y)), 1.0)
            if abs(float(x) - float(y)) > rel * scale:
                return False
        elif x != y:
            return False
    return True
