"""Call graph completeness and islands tests."""

from repro.analysis.pointsto import PointsToAnalysis
from repro.core.callgraph import CallGraph
from repro.core.islands import connected_components
from repro.frontend import compile_source


def build_cg(source):
    module = compile_source(source)
    return module, CallGraph(module, PointsToAnalysis(module))


class TestCallGraph:
    def test_direct_edges(self):
        module, cg = build_cg(
            """
int helper(int x) { return x + 1; }
int main() { return helper(1); }
"""
        )
        main = module.get_function("main")
        edges = cg.callees_of(main)
        assert [e.callee.name for e in edges] == ["helper"]
        assert edges[0].is_must
        assert len(edges[0].call_sites) == 1

    def test_indirect_calls_resolved(self):
        module, cg = build_cg(
            """
int sel = 0;
int f1() { return 1; }
int f2() { return 2; }
int main() {
  int (*p)(void);
  if (sel) { p = f1; } else { p = f2; }
  return p();
}
"""
        )
        main = module.get_function("main")
        names = {e.callee.name for e in cg.callees_of(main)}
        assert {"f1", "f2"} <= names
        assert cg.is_complete()
        # Two possible targets: the edges are may-edges.
        for edge in cg.callees_of(main):
            if edge.callee.name in ("f1", "f2"):
                assert not edge.is_must

    def test_callers_of(self):
        module, cg = build_cg(
            """
int shared() { return 3; }
int a() { return shared(); }
int b() { return shared(); }
int main() { return a() + b(); }
"""
        )
        shared = module.get_function("shared")
        callers = {e.caller.name for e in cg.callers_of(shared)}
        assert callers == {"a", "b"}

    def test_reachability(self):
        module, cg = build_cg(
            """
int used() { return 1; }
int unused() { return 2; }
int main() { return used(); }
"""
        )
        main = module.get_function("main")
        reachable = cg.reachable_from([main])
        assert id(module.get_function("used")) in reachable
        assert id(module.get_function("unused")) not in reachable

    def test_recursion_detected(self):
        module, cg = build_cg(
            """
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int leaf() { return 5; }
int main() { return fact(4) + leaf(); }
"""
        )
        assert cg.is_recursive(module.get_function("fact"))
        assert not cg.is_recursive(module.get_function("leaf"))

    def test_islands(self):
        module, cg = build_cg(
            """
int a() { return b(); }
int b();
int b() { return 1; }
int lonely_x() { return lonely_y(); }
int lonely_y() { return 2; }
int main() { return a(); }
"""
        )
        islands = cg.islands()
        by_members = [sorted(f.name for f in island) for island in islands]
        assert ["lonely_x", "lonely_y"] in by_members
        main_island = [m for m in by_members if "main" in m][0]
        assert "a" in main_island and "b" in main_island
        assert "lonely_x" not in main_island


class TestIslandsHelper:
    def test_connected_components(self):
        values = ["a", "b", "c", "d"]
        neighbors = {
            id(values[0]): [values[1]],
            id(values[1]): [values[0]],
            id(values[2]): [],
            id(values[3]): [],
        }
        components = connected_components(values, neighbors)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 2]

    def test_empty(self):
        assert connected_components([], {}) == []
