"""Data-flow engine tests: the generic solver and the canned analyses."""

from repro import ir
from repro.core.dataflow import (
    DataFlowEngine,
    DataFlowProblem,
    liveness,
    reaching_definitions,
)
from repro.frontend import compile_source
from tests.conftest import build_count_loop


class TestLiveness:
    def test_loop_values_live_around_backedge(self, count_loop):
        _, fn, v = count_loop
        result = liveness(fn)
        live_into_body = result.in_of_block(v["body"])
        assert id(v["i"]) in live_into_body
        assert id(v["acc"]) in live_into_body

    def test_dead_after_last_use(self, count_loop):
        _, fn, v = count_loop
        result = liveness(fn)
        # cmp is consumed by the branch; nothing needs it in the body.
        assert id(v["cmp"]) not in result.in_of_block(v["body"])

    def test_instruction_granularity(self, count_loop):
        _, fn, v = count_loop
        result = liveness(fn)
        # Before i.next computes, i is live; after, the body no longer
        # needs i (only i.next flows on).
        assert id(v["i"]) in result.in_of(v["i_next"])
        assert id(v["i"]) not in result.out_of(v["i_next"])

    def test_accumulator_live_out_of_loop(self, count_loop):
        _, fn, v = count_loop
        result = liveness(fn)
        assert id(v["acc"]) in result.in_of_block(v["exit"])


class TestReachingDefinitions:
    def test_store_reaches_load(self):
        module = compile_source(
            """
int cell = 0;
int main() { cell = 3; return cell; }
"""
        )
        fn = module.get_function("main")
        result = reaching_definitions(fn)
        store = [i for i in fn.instructions() if isinstance(i, ir.Store)][0]
        load = [i for i in fn.instructions() if isinstance(i, ir.Load)][0]
        assert id(store) in result.in_of(load)

    def test_second_store_kills_first(self):
        module = compile_source(
            """
int cell = 0;
int main() { cell = 3; cell = 4; return cell; }
"""
        )
        fn = module.get_function("main")
        result = reaching_definitions(fn)
        stores = [i for i in fn.instructions() if isinstance(i, ir.Store)]
        load = [i for i in fn.instructions() if isinstance(i, ir.Load)][0]
        reaching = result.in_of(load)
        assert id(stores[1]) in reaching
        assert id(stores[0]) not in reaching


class TestGenericEngine:
    def test_forward_intersection_meet(self, count_loop):
        _, fn, v = count_loop
        # "Available facts": a fact generated in entry is available
        # everywhere (all paths pass through entry).
        fact = "from-entry"

        def gen(inst):
            return {fact} if inst.parent is v["entry"] else set()

        def kill(inst):
            return set()

        problem = DataFlowProblem("forward", gen, kill, meet="intersection")
        result = DataFlowEngine().run(fn, problem)
        assert fact in result.in_of_block(v["exit"])
        assert fact in result.in_of_block(v["body"])

    def test_forward_intersection_kills_on_one_path(self):
        module = compile_source(
            """
int flag = 0;
int main() {
  int r = 1;
  if (flag) { r = 2; } else { r = 3; }
  return r;
}
"""
        )
        fn = module.get_function("main")
        then_block = [b for b in fn.blocks if "then" in b.name][0]
        merge = [b for b in fn.blocks if "end" in b.name][0]
        fact = "then-only"

        def gen(inst):
            return {fact} if inst.parent is then_block else set()

        def kill(inst):
            return set()

        problem = DataFlowProblem("forward", gen, kill, meet="intersection")
        result = DataFlowEngine().run(fn, problem)
        # The fact holds on only one incoming path: intersection drops it.
        assert fact not in result.in_of_block(merge)

        union_problem = DataFlowProblem("forward", gen, kill, meet="union")
        union_result = DataFlowEngine().run(fn, union_problem)
        assert fact in union_result.in_of_block(merge)

    def test_boundary_seeds_entry(self, count_loop):
        _, fn, v = count_loop
        problem = DataFlowProblem(
            "forward", lambda i: set(), lambda i: set(), boundary={"seed"}
        )
        result = DataFlowEngine().run(fn, problem)
        assert "seed" in result.in_of_block(v["entry"])
        assert "seed" in result.in_of_block(v["exit"])

    def test_direction_validation(self):
        import pytest

        with pytest.raises(ValueError):
            DataFlowProblem("sideways", lambda i: set(), lambda i: set())
        with pytest.raises(ValueError):
            DataFlowProblem("forward", lambda i: set(), lambda i: set(), meet="max")
