"""Environment, Task, and Architecture abstraction tests."""

from repro import ir
from repro.core.architecture import ArchitectureDescription
from repro.core.environment import EnvironmentBuilder
from repro.core.task import Task, make_task_function
from repro.interp import Interpreter


class TestEnvironment:
    def _module_with_env(self):
        module = ir.Module("env")
        builder = EnvironmentBuilder(module)
        fake_int = ir.BinaryOp("add", ir.const_int(1), ir.const_int(2), "a")
        fake_float = ir.BinaryOp("fadd", ir.const_float(1), ir.const_float(2), "b")
        env = builder.create([fake_int, fake_float], [fake_int], "testenv")
        return module, builder, env, fake_int, fake_float

    def test_layout(self):
        module, _, env, fi, ff = self._module_with_env()
        assert env.num_fields() == 3
        assert env.num_live_outs() == 1
        assert env.field_index(fi) == 0
        assert env.field_index(ff) == 1
        assert env.struct.fields == [ir.I64, ir.DOUBLE, ir.I64]

    def test_unique_struct_names(self):
        module = ir.Module("env2")
        builder = EnvironmentBuilder(module)
        a = builder.create([], [], "env")
        b = builder.create([], [], "env")
        assert a.struct.name != b.struct.name

    def test_roundtrip_through_memory(self):
        """Store a live-in, load it back inside a 'task'."""
        module = ir.Module("envrt")
        envb = EnvironmentBuilder(module)
        fn = module.add_function("main", ir.FunctionType(ir.I64, []))
        builder, _ = ir.build_function(fn)
        seed = builder.add(ir.const_int(20), ir.const_int(22), "seed")
        env = envb.create([seed], [], "rt")
        env_ptr = envb.allocate(builder, env)
        envb.store_live_ins(builder, env, env_ptr)
        loaded = envb.load_field(builder, env, env_ptr, seed, "back")
        builder.ret(loaded)
        ir.verify_module(module)
        assert Interpreter(module).run().return_value == 42


class TestTask:
    def test_signature(self):
        module = ir.Module("t")
        envb = EnvironmentBuilder(module)
        env = envb.create([], [], "taskenv")
        task_fn = make_task_function(module, env, "worker")
        assert [a.name for a in task_fn.args] == ["env", "core_id", "num_cores"]
        assert task_fn.function_type.ret.is_void()
        assert task_fn.function_type.params[0] == env.pointer_type()

    def test_name_uniquing(self):
        module = ir.Module("t2")
        envb = EnvironmentBuilder(module)
        env = envb.create([], [], "e")
        a = make_task_function(module, env, "worker")
        b = make_task_function(module, env, "worker")
        assert a.name != b.name

    def test_clone_lookup(self):
        module = ir.Module("t3")
        envb = EnvironmentBuilder(module)
        env = envb.create([], [], "e")
        task = Task(make_task_function(module, env, "w"), env)
        original = ir.BinaryOp("add", ir.const_int(1), ir.const_int(2))
        clone = ir.BinaryOp("add", ir.const_int(1), ir.const_int(2))
        task.clones[id(original)] = clone
        assert task.clone_of(original) is clone
        assert task.clone_of(clone) is None


class TestArchitecture:
    def test_haswell_like_matches_paper_platform(self):
        arch = ArchitectureDescription.haswell_like()
        assert arch.num_physical_cores == 12
        assert arch.smt_ways == 2
        assert arch.num_logical_cores == 24

    def test_latency_symmetric_and_zero_self(self):
        arch = ArchitectureDescription(4)
        assert arch.latency(1, 1) == 0
        assert arch.latency(0, 3) == arch.latency(3, 0)
        assert arch.latency(0, 3) > 0

    def test_numa_penalty(self):
        arch = ArchitectureDescription(8, numa_nodes=2)
        same_node = arch.latency(0, 1)
        cross_node = arch.latency(0, 7)
        assert arch.numa_node_of(0) != arch.numa_node_of(7)
        assert cross_node > same_node

    def test_smt_mapping(self):
        arch = ArchitectureDescription(4, smt_ways=2)
        assert arch.physical_core_of(0) == arch.physical_core_of(4)

    def test_measured_overrides(self):
        arch = ArchitectureDescription(4)
        arch.set_latency(0, 1, 7)
        assert arch.latency(0, 1) == 7
        assert arch.latency(1, 0) == 7
        arch.set_bandwidth(0, 1, 2.5)
        assert arch.bandwidth(1, 0) == 2.5

    def test_infinite_self_bandwidth(self):
        arch = ArchitectureDescription(2)
        assert arch.bandwidth(0, 0) == float("inf")
