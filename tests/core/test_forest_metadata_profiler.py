"""Forest (FR), deterministic IDs, metadata, and profiler (PRO) tests."""

from repro.core import Noelle
from repro.core.forest import Forest
from repro.core.metadata import IDAssigner, clean_noelle_metadata
from repro.core.profiler import Profiler, embed_profile, read_embedded_counts
from repro.frontend import compile_source


class TestForest:
    def _forest(self):
        forest = Forest()
        forest.add("root")
        forest.add("child1", "root")
        forest.add("child2", "root")
        forest.add("grandchild", "child1")
        return forest

    def test_structure(self):
        forest = self._forest()
        assert [r.value for r in forest.roots] == ["root"]
        assert forest.num_nodes() == 4
        assert forest.node_of("grandchild").depth() == 2
        assert {n.value for n in forest.leaves()} == {"child2", "grandchild"}

    def test_bottom_up_order(self):
        forest = self._forest()
        order = [n.value for n in forest.bottom_up()]
        assert order.index("grandchild") < order.index("child1")
        assert order.index("child1") < order.index("root")

    def test_remove_reconnects_children(self):
        forest = self._forest()
        forest.remove("child1")
        # grandchild is adopted by root.
        grandchild = forest.node_of("grandchild")
        assert grandchild.parent.value == "root"
        assert forest.num_nodes() == 3

    def test_remove_root_promotes_children(self):
        forest = self._forest()
        forest.remove("root")
        root_values = {r.value for r in forest.roots}
        assert root_values == {"child1", "child2"}
        assert forest.node_of("child1").parent is None

    def test_remove_unknown_is_noop(self):
        forest = self._forest()
        forest.remove("not-there")
        assert forest.num_nodes() == 4


SOURCE = """
int work(int x) { return x * 2 + 1; }
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 25; i = i + 1) {
    s = s + work(i);
  }
  return s;
}
"""


class TestIDs:
    def test_deterministic_across_builds(self):
        a = compile_source(SOURCE)
        b = compile_source(SOURCE)
        ids_a = IDAssigner(a)
        ids_b = IDAssigner(b)
        # Same program, same traversal: the Nth instruction gets ID N.
        for n in range(a.num_instructions()):
            inst_a = ids_a.instruction_by_id(n)
            inst_b = ids_b.instruction_by_id(n)
            assert inst_a.opcode == inst_b.opcode

    def test_roundtrip(self):
        module = compile_source(SOURCE)
        ids = IDAssigner(module)
        for fn in module.defined_functions():
            for inst in fn.instructions():
                ident = ids.id_of_instruction(inst)
                assert ids.instruction_by_id(ident) is inst

    def test_clean_metadata(self):
        module = compile_source(SOURCE)
        IDAssigner(module)
        removed = clean_noelle_metadata(module)
        assert removed > 0
        for fn in module.defined_functions():
            for inst in fn.instructions():
                assert not any(k.startswith("noelle.") for k in inst.metadata)


class TestProfiler:
    def test_counts_and_hotness(self):
        module = compile_source(SOURCE)
        profile = Profiler(module).profile()
        noelle = Noelle(module)
        loop = noelle.loop_info(module.get_function("main")).loops()[0]
        assert profile.loop_invocations(loop) == 1
        assert profile.loop_total_iterations(loop) == 25
        assert profile.average_iterations_per_invocation(loop) == 25.0
        # The loop (with its callee) dominates the run.
        assert profile.loop_hotness(loop) > 0.8

    def test_function_statistics(self):
        module = compile_source(SOURCE)
        profile = Profiler(module).profile()
        work = module.get_function("work")
        main = module.get_function("main")
        assert profile.function_invocations(work) == 25
        assert profile.function_invocations(main) == 1
        assert profile.average_callee_invocations(main, work) == 25.0

    def test_branch_probability(self):
        module = compile_source(SOURCE)
        profile = Profiler(module).profile()
        main = module.get_function("main")
        header = [b for b in main.blocks if "cond" in b.name][0]
        body = [b for b in main.blocks if "body" in b.name][0]
        exit_block = [b for b in main.blocks if "end" in b.name][0]
        p_body = profile.branch_probability(header, body)
        p_exit = profile.branch_probability(header, exit_block)
        assert p_body > 0.9
        assert abs(p_body + p_exit - 1.0) < 1e-9

    def test_embed_and_read_back(self):
        module = compile_source(SOURCE)
        profile = Profiler(module).profile()
        embed_profile(module, profile)
        counts = read_embedded_counts(module)
        total = sum(counts.values())
        assert total == sum(
            profile.count_of(i)
            for fn in module.defined_functions()
            for i in fn.instructions()
        )

    def test_inclusive_hotness_includes_callees(self):
        module = compile_source(SOURCE)
        profile = Profiler(module).profile()
        main = module.get_function("main")
        loop = Noelle(module).loop_info(main).loops()[0]
        own = profile.weight_of_instructions(list(loop.instructions()))
        inclusive = profile.inclusive_weight_of_instructions(
            list(loop.instructions())
        )
        assert inclusive > own
