"""INV (Algorithm 2) and IV abstraction tests, including the comparison
against the LLVM-grade baselines the paper's Figure 4 / Section 4.3 make."""

from repro import ir
from repro.analysis.aa import BasicAliasAnalysis
from repro.analysis.dominators import DominatorTree
from repro.analysis.loopinfo import LoopInfo
from repro.baselines.induction_llvm import find_governing_iv_llvm
from repro.baselines.invariants_llvm import invariants_llvm
from repro.core import Noelle
from repro.frontend import compile_source


def first_loop(source):
    module = compile_source(source)
    noelle = Noelle(module)
    return module, noelle, noelle.loops()[0]


CHAINED_INVARIANT = """
int factor = 6;
int a[30];
int main() {
  int i;
  for (i = 0; i < 30; i = i + 1) {
    int k = factor * 2;
    int m = k + 5;
    a[i] = i * m;
  }
  return a[3];
}
"""


class TestInvariants:
    def test_chained_invariants_found(self):
        module, _, loop = first_loop(CHAINED_INVARIANT)
        invariants = loop.invariants.invariants()
        opcodes = sorted(i.opcode for i in invariants)
        # load factor, k = mul, m = add — all invariant.
        assert "load" in opcodes and "mul" in opcodes and "add" in opcodes
        assert len(invariants) == 3

    def test_algorithm1_misses_the_chain(self):
        module = compile_source(CHAINED_INVARIANT)
        fn = module.get_function("main")
        dom = DominatorTree(fn)
        loop = LoopInfo(fn, dom).loops()[0]
        found = invariants_llvm(loop, dom, BasicAliasAnalysis())
        # Algorithm 1 rejects any instruction with an in-loop operand, so
        # only the load (and nothing downstream of it) qualifies.
        module2, _, noelle_loop = first_loop(CHAINED_INVARIANT)
        noelle_found = noelle_loop.invariants.invariants()
        assert len(found) < len(noelle_found)

    def test_variant_values_rejected(self):
        _, _, loop = first_loop(
            """
int a[20];
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) { a[i] = i * 2; }
  return a[0];
}
"""
        )
        invariants = loop.invariants.invariants()
        assert not [i for i in invariants if i.opcode == "mul"]

    def test_load_with_in_loop_store_rejected(self):
        _, _, loop = first_loop(
            """
int cell = 5;
int a[20];
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) {
    int v = cell;
    a[i] = v;
    cell = v + 1;
  }
  return cell;
}
"""
        )
        loads = [
            i for i in loop.invariants.invariants() if isinstance(i, ir.Load)
        ]
        assert not loads

    def test_pure_call_with_invariant_args(self):
        _, _, loop = first_loop(
            """
int base = 3;
int a[20];
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) {
    double s = sqrt(2.0);
    a[i] = i + (int)s;
  }
  return a[1];
}
"""
        )
        calls = [i for i in loop.invariants.invariants() if isinstance(i, ir.Call)]
        assert len(calls) == 1  # sqrt is pure and its argument is constant

    def test_outside_instruction_not_invariant(self):
        module, _, loop = first_loop(CHAINED_INVARIANT)
        ret = module.get_function("main").blocks[-1].terminator
        assert not loop.invariants.is_invariant(ret)


class TestInductionVariables:
    def test_basic_iv(self):
        _, _, loop = first_loop(
            "int main() { int i; int s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"
        )
        manager = loop.induction_variables
        ivs = manager.all_ivs()
        assert ivs
        governing = manager.governing_iv()
        assert governing is not None
        assert governing.constant_step() == 1
        assert governing.exit_compare is not None

    def test_non_governing_secondary_iv(self):
        _, _, loop = first_loop(
            """
int a[100];
int main() {
  int i; int j = 0;
  for (i = 0; i < 50; i = i + 1) {
    a[j] = i;
    j = j + 2;
  }
  return a[4];
}
"""
        )
        manager = loop.induction_variables
        steps = sorted(iv.constant_step() for iv in manager.all_ivs())
        assert steps == [1, 2]
        governing = manager.governing_iv()
        assert governing is not None and governing.constant_step() == 1

    def test_derived_iv_relationship(self):
        _, _, loop = first_loop(
            """
int a[300];
int main() {
  int i; int j = 0;
  for (i = 0; i < 50; i = i + 1) {
    a[j] = i;
    j = j + 4;
  }
  return a[8];
}
"""
        )
        ivs = loop.induction_variables.all_ivs()
        derived = [iv for iv in ivs if iv.derived_from is not None]
        assert derived
        assert derived[0].constant_step() == 4

    def test_while_shape_handled_by_noelle_not_llvm(self):
        source = """
int main() {
  int i = 0;
  int s = 0;
  while (i < 25) { s = s + i; i = i + 1; }
  return s;
}
"""
        module, _, loop = first_loop(source)
        assert loop.governing_iv() is not None
        natural = loop.natural_loop
        assert find_governing_iv_llvm(natural) is None  # wrong shape for LLVM

    def test_do_while_found_by_both(self):
        source = """
int main() {
  int i = 0;
  int s = 0;
  do { s = s + i; i = i + 1; } while (i < 25);
  return s;
}
"""
        module, _, loop = first_loop(source)
        assert loop.governing_iv() is not None
        llvm_iv = find_governing_iv_llvm(loop.natural_loop)
        assert llvm_iv is not None
        assert llvm_iv.step == 1

    def test_variable_bound_still_governing(self):
        _, _, loop = first_loop(
            """
int limit = 40;
int main() {
  int i; int s = 0;
  for (i = 0; i < limit; i = i + 1) { s = s + 1; }
  return s;
}
"""
        )
        assert loop.governing_iv() is not None

    def test_data_dependent_exit_not_governing(self):
        _, _, loop = first_loop(
            """
int a[100];
int main() {
  int i = 0;
  while (a[i] == 0 && i < 99) { i = i + 1; }
  return i;
}
"""
        )
        # The exit depends on memory, not only the IV: multiple exits and
        # a non-affine condition; there must be no *unique* governing IV
        # claim that would mislead a parallelizer.
        governing = loop.governing_iv()
        if governing is not None:
            assert governing.exit_compare is not None
