"""Loop (L) facade, Noelle facade, LoopStructure, reduction edge cases,
and the SCCDAG partitioner."""

import pytest

from repro import ir
from repro.core import Noelle, SCCDAGPartitioner
from repro.core.loopstructure import LoopStructure
from repro.frontend import compile_source


SOURCE = """
int a[100];
int main() {
  int i; int s = 0;
  for (i = 0; i < 100; i = i + 1) { a[i] = i * 2; }
  for (i = 0; i < 100; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return s;
}
"""


class TestNoelleFacade:
    def test_demand_driven_caching(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        # Nothing computed until asked.
        assert noelle._pdg is None and noelle._callgraph is None
        pdg = noelle.pdg()
        assert noelle.pdg() is pdg  # cached
        cg = noelle.call_graph()
        assert noelle.call_graph() is cg
        assert noelle.loops() is noelle.loops()

    def test_invalidate_drops_caches(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        pdg = noelle.pdg()
        noelle.invalidate()
        assert noelle._pdg is None
        assert noelle.pdg() is not pdg

    def test_loop_ids_are_stable(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        ids = [loop.structure.loop_id for loop in noelle.loops()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_profile_orders_loops_hot_first(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        profile = noelle.run_profiler()
        loops = noelle.loops()
        hotness = [profile.loop_hotness(l.natural_loop) for l in loops]
        assert hotness == sorted(hotness, reverse=True)

    def test_minimum_hotness_filters(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module, minimum_hotness=2.0)  # impossible bar
        noelle.run_profiler()
        assert noelle.loops() == []

    def test_loop_forest(self):
        source = """
int main() {
  int i; int j; int s = 0;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) { s = s + 1; }
  }
  return s;
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        forest = noelle.loop_forest(module.get_function("main"))
        assert len(forest.roots) == 1
        assert len(forest.roots[0].children) == 1

    def test_embedded_pdg_reuse_via_load(self):
        from repro.tools import embed_pdg, load

        module = compile_source(SOURCE)
        embed_pdg(module)
        noelle = load(module)
        assert noelle.pdg().aa is None  # rebuilt from metadata


class TestLoopFacade:
    def test_lazy_subabstractions(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        assert loop._sccdag is None and loop._ivs is None
        _ = loop.sccdag
        assert loop._sccdag is not None
        _ = loop.induction_variables
        assert loop._ivs is not None
        loop.invalidate()
        assert loop._sccdag is None and loop._ivs is None

    def test_live_boundary(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        reduction_loop = noelle.loops()[1]
        outs = reduction_loop.live_outs()
        assert len(outs) == 1
        assert reduction_loop.reductions()


class TestLoopStructure:
    def test_queries(self):
        module = compile_source(SOURCE)
        noelle = Noelle(module)
        structure = noelle.loops()[0].structure
        assert structure.function.name == "main"
        assert structure.num_blocks() >= 2
        assert structure.latches()
        assert structure.exiting_blocks()
        assert structure.exit_blocks()
        assert structure.pre_header() is not None
        assert structure.depth() == 1
        assert structure.is_while_shaped()
        assert structure.num_instructions() == sum(
            len(b.instructions) for b in structure.basic_blocks()
        )

    def test_metadata_attachment(self):
        module = compile_source(SOURCE)
        structure = Noelle(module).loops()[0].structure
        structure.metadata["noelle.option"] = {"force": True}
        assert structure.metadata["noelle.option"]["force"]


class TestReductionEdgeCases:
    def _reductions(self, source):
        module = compile_source(source)
        return Noelle(module).loops()[-1].reductions()

    def test_subtraction_not_reducible(self):
        # s = s - a[i] lowers to sub: not commutative-associative as
        # written (real NOELLE handles it by negation; we must not
        # misclassify it as a plain reduction over 'sub').
        reductions = self._reductions("""
int a[20];
int main() {
  int i; int s = 100;
  for (i = 0; i < 20; i = i + 1) { s = s - a[i]; }
  return s;
}
""")
        assert all(r.operator != "sub" for r in reductions)

    def test_two_independent_reductions(self):
        module = compile_source("""
int a[30];
int main() {
  int i; int s = 0; int x = 0;
  for (i = 0; i < 30; i = i + 1) {
    s = s + a[i];
    x = x ^ a[i];
  }
  print_int(s + x);
  return s;
}
""")
        loop = Noelle(module).loops()[0]
        operators = sorted(r.operator for r in loop.reductions())
        assert operators == ["add", "xor"]

    def test_descriptor_values(self):
        module = compile_source("""
int a[10];
int main() {
  int i; int s = 7;
  for (i = 0; i < 10; i = i + 1) { s = s + a[i]; }
  return s;
}
""")
        loop = Noelle(module).loops()[0]
        descriptor = loop.reductions()[0]
        assert descriptor.identity == 0
        initial = descriptor.initial_value()
        assert isinstance(initial, ir.ConstantInt) and initial.value == 7
        assert descriptor.exit_value().opcode == "add"


class TestPartitioner:
    def _partitioner(self, exclude_skeleton=True):
        module = compile_source("""
int main() {
  int i; int s = 0;
  for (i = 0; i < 50; i = i + 1) {
    int x = (i * 3 + 1) % 11;
    int y = (x * x + 2) % 13;
    int z = (y * 5 + x) % 17;
    s = s + z;
  }
  return s;
}
""")
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        exclude = set()
        if exclude_skeleton:
            iv = loop.governing_iv()
            exclude = {id(i) for i in [iv.phi, *iv.update_instructions()]}
            for block in loop.structure.basic_blocks():
                if block.terminator is not None:
                    exclude.add(id(block.terminator))
        return SCCDAGPartitioner(loop.sccdag, exclude)

    def test_groups_are_topologically_ordered(self):
        partitioner = self._partitioner()
        groups = partitioner.colocated_groups()
        assert len(groups) >= 3

    def test_partition_count_respected(self):
        partitioner = self._partitioner()
        for k in (1, 2, 3):
            partitions = partitioner.partition(k)
            assert 1 <= len(partitions) <= k
            # Every instruction appears in exactly one partition.
            all_ids = [id(i) for p in partitions for i in p]
            assert len(all_ids) == len(set(all_ids))

    def test_balance_is_reasonable(self):
        partitioner = self._partitioner()
        partitions = partitioner.partition(2)
        if len(partitions) == 2:
            from repro.interp.interp import INSTRUCTION_COSTS

            costs = [
                sum(INSTRUCTION_COSTS.get(i.opcode, 1) for i in p)
                for p in partitions
            ]
            assert max(costs) < 20 * max(1, min(costs))

    def test_exclusion_respected(self):
        partitioner = self._partitioner(exclude_skeleton=True)
        for partition in partitioner.partition(3):
            assert not any(id(i) in partitioner.exclude for i in partition)
