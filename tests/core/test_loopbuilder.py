"""Loop builder (LB) tests: canonicalization, cloning, splitting, rotation."""

import pytest

from repro import ir
from repro.core import Noelle
from repro.core.loopbuilder import LoopBuilder
from repro.frontend import compile_source
from repro.interp import Interpreter


def loop_of(module, fn_name="main", index=0):
    noelle = Noelle(module)
    fn = module.get_function(fn_name)
    return noelle.loop_info(fn).loops()[index]


class TestCanonicalization:
    def test_ensure_pre_header_existing(self):
        module = compile_source(
            "int main() { int i; int s = 0; for (i = 0; i < 5; i = i + 1) { s = s + 1; } return s; }"
        )
        fn = module.get_function("main")
        loop = loop_of(module)
        pre = LoopBuilder(fn).ensure_pre_header(loop)
        assert pre.successors() == [loop.header]
        assert not loop.contains_block(pre)
        ir.verify_function(fn)

    def test_ensure_dedicated_exits(self):
        # A loop exiting into a block also reachable from outside.
        module = compile_source(
            """
int flag = 0;
int main() {
  int i = 0;
  int s = 0;
  if (flag) { s = 100; }
  while (i < 5) { i = i + 1; }
  return s + i;
}
"""
        )
        fn = module.get_function("main")
        expected = Interpreter(compile_source(
            """
int flag = 0;
int main() {
  int i = 0;
  int s = 0;
  if (flag) { s = 100; }
  while (i < 5) { i = i + 1; }
  return s + i;
}
"""
        )).run().return_value
        loop = loop_of(module)
        LoopBuilder(fn).ensure_dedicated_exits(loop)
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected

    def test_hoist_to_pre_header(self):
        module = compile_source(
            """
int base = 9;
int a[20];
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) {
    int k = base + 1;
    a[i] = k;
  }
  return a[3];
}
"""
        )
        fn = module.get_function("main")
        expected = 10
        loop = loop_of(module)
        lb = LoopBuilder(fn)
        adds = [
            inst for inst in loop.instructions()
            if inst.opcode == "add" and not any(
                isinstance(op, ir.Instruction) and loop.contains(op)
                for op in inst.operands
            )
        ]
        # Hoist the invariant load + add chain bottom-up legality-free here.
        loads = [i for i in loop.instructions() if isinstance(i, ir.Load)
                 and isinstance(i.pointer, ir.GlobalVariable)]
        for inst in loads + adds:
            lb.hoist_to_pre_header(loop, inst)
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected


class TestCloning:
    def test_clone_into_same_function_is_isomorphic(self, count_loop):
        module, fn, v = count_loop
        noelle_loop = loop_of(module, "sum")
        lb = LoopBuilder(fn)
        value_map = {}
        block_map = lb.clone_blocks_into(fn, noelle_loop.blocks, value_map)
        assert len(block_map) == len(noelle_loop.blocks)
        for block in noelle_loop.blocks:
            clone = block_map[id(block)]
            assert len(clone.instructions) == len(block.instructions)
            for original, cloned in zip(block.instructions, clone.instructions):
                assert original.opcode == cloned.opcode

    def test_clone_remaps_operands(self, count_loop):
        module, fn, v = count_loop
        noelle_loop = loop_of(module, "sum")
        lb = LoopBuilder(fn)
        value_map = {}
        block_map = lb.clone_blocks_into(fn, noelle_loop.blocks, value_map)
        cloned_next = value_map[id(v["i_next"])]
        cloned_phi = value_map[id(v["i"])]
        assert cloned_next.lhs is cloned_phi  # intra-region operand remapped
        original_users = {id(u) for u in v["i"].users()}
        assert id(cloned_next) not in original_users


class TestSplitLoop:
    def test_split_preserves_semantics(self):
        source = """
int total = 0;
int main() {
  int i;
  for (i = 0; i < 40; i = i + 1) { total = total + i * i; }
  return total;
}
"""
        expected = Interpreter(compile_source(source)).run().return_value
        module = compile_source(source)
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        fn = loop.structure.function
        iv = loop.governing_iv()
        assert iv is not None
        LoopBuilder(fn).split_loop(loop.natural_loop, iv, ir.const_int(17))
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected

    def test_split_at_zero_runs_everything_in_second_loop(self):
        source = """
int total = 0;
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { total = total + 1; }
  return total;
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        iv = loop.governing_iv()
        LoopBuilder(loop.structure.function).split_loop(
            loop.natural_loop, iv, ir.const_int(0)
        )
        assert Interpreter(module).run().return_value == 10


class TestWhileToDoWhile:
    def test_rotation_preserves_semantics(self):
        source = """
int total = 0;
int main() {
  int i = 0;
  while (i < 13) { total = total + i; i = i + 1; }
  return total;
}
"""
        expected = Interpreter(compile_source(source)).run().return_value
        module = compile_source(source)
        fn = module.get_function("main")
        loop = loop_of(module)
        guard = LoopBuilder(fn).while_to_do_while(loop)
        assert guard is not None
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected

    def test_rotation_zero_trip_count(self):
        source = """
int bound = 0;
int main() {
  int i = 0;
  int hits = 0;
  while (i < bound) { hits = hits + 1; i = i + 1; }
  return hits;
}
"""
        module = compile_source(source)
        fn = module.get_function("main")
        loop = loop_of(module)
        guard = LoopBuilder(fn).while_to_do_while(loop)
        assert guard is not None
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == 0

    def test_rotated_loop_is_do_while_shaped(self):
        source = """
int main() {
  int i = 0;
  int s = 0;
  while (i < 8) { s = s + 2; i = i + 1; }
  return s;
}
"""
        module = compile_source(source)
        fn = module.get_function("main")
        loop = loop_of(module)
        LoopBuilder(fn).while_to_do_while(loop)
        from repro.analysis.loopinfo import LoopInfo
        from repro.core.loopstructure import LoopStructure

        rotated = LoopInfo(fn).loops()[0]
        assert LoopStructure(rotated).is_do_while_shaped()
        # And LLVM's do-while IV matcher can now see the governing IV.
        from repro.baselines.induction_llvm import find_governing_iv_llvm

        assert find_governing_iv_llvm(rotated) is not None

    def test_rotation_rejects_multi_exit(self):
        source = """
int main() {
  int i = 0;
  while (i < 10) {
    if (i == 5) { break; }
    i = i + 1;
  }
  return i;
}
"""
        module = compile_source(source)
        fn = module.get_function("main")
        loop = loop_of(module)
        assert LoopBuilder(fn).while_to_do_while(loop) is None


class TestDoWhileToWhile:
    def _convert(self, source):
        from repro.analysis.loopinfo import LoopInfo

        reference = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        fn = module.get_function("main")
        loop = LoopInfo(fn).loops()[0]
        new_header = LoopBuilder(fn).do_while_to_while(loop)
        return reference, module, fn, new_header

    def test_counted_conversion(self):
        reference, module, fn, new_header = self._convert("""
int main() {
  int i = 0; int s = 0;
  do { s = s + i * 3; i = i + 1; } while (i < 11);
  print_int(s); print_int(i);
  return s;
}
""")
        assert new_header is not None
        result = Interpreter(module).run()
        assert result.output == reference.output
        from repro.analysis.loopinfo import LoopInfo
        from repro.core.loopstructure import LoopStructure

        rotated = LoopInfo(fn).loops()[0]
        assert LoopStructure(rotated).is_while_shaped()

    def test_single_iteration_loop(self):
        reference, module, fn, new_header = self._convert("""
int main() {
  int i = 5; int s = 0;
  do { s = s + i; i = i + 1; } while (i < 6);
  print_int(s);
  return s;
}
""")
        assert new_header is not None
        assert Interpreter(module).run().output == reference.output

    def test_memory_body(self):
        reference, module, fn, new_header = self._convert("""
int out[25];
int main() {
  int i = 0;
  do { out[i] = i * 7 % 11; i = i + 1; } while (i < 25);
  print_int(out[24]);
  return 0;
}
""")
        assert new_header is not None
        assert Interpreter(module).run().output == reference.output

    def test_declines_while_shaped(self):
        from repro.analysis.loopinfo import LoopInfo

        module = compile_source(
            "int main() { int i = 0; while (i < 5) { i = i + 1; } return i; }"
        )
        fn = module.get_function("main")
        loop = LoopInfo(fn).loops()[0]
        assert LoopBuilder(fn).do_while_to_while(loop) is None

    def test_declines_memory_dependent_condition(self):
        from repro.analysis.loopinfo import LoopInfo

        module = compile_source("""
int flags[40];
int main() {
  int i = 0;
  do { i = i + 1; } while (flags[i] == 0 && i < 39);
  return i;
}
""")
        fn = module.get_function("main")
        loop = LoopInfo(fn).loops()[0]
        # Condition reads memory: re-evaluation is unsafe; must decline.
        assert LoopBuilder(fn).do_while_to_while(loop) is None


class TestPeeling:
    def test_peel_first_iteration(self):
        from repro.analysis.loopinfo import LoopInfo
        from repro.core import Noelle

        source = """
int total = 0;
int main() {
  int i;
  for (i = 0; i < 9; i = i + 1) { total = total + i * i; }
  return total;
}
"""
        reference = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        iv = loop.governing_iv()
        LoopBuilder(loop.structure.function).peel_first_iteration(
            loop.natural_loop, iv
        )
        ir.verify_function(module.get_function("main"))
        assert Interpreter(module).run().return_value == reference.return_value

    def test_peel_requires_constant_start(self):
        from repro.core import Noelle

        module = compile_source("""
int start = 3;
int main() {
  int i; int s = 0;
  for (i = start; i < 10; i = i + 1) { s = s + 1; }
  return s;
}
""")
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        iv = loop.governing_iv()
        with pytest.raises(ValueError):
            LoopBuilder(loop.structure.function).peel_first_iteration(
                loop.natural_loop, iv
            )
