"""PDG construction and loop dependence graph tests."""

from repro import ir
from repro.analysis.aa import BasicAliasAnalysis
from repro.analysis.loopinfo import LoopInfo
from repro.analysis.pointsto import AndersenAliasAnalysis
from repro.core.depgraph import DependenceGraph
from repro.core.pdg import PDG
from repro.frontend import compile_source


def build_pdg(source, strong=True):
    module = compile_source(source)
    aa = AndersenAliasAnalysis(module) if strong else BasicAliasAnalysis()
    return module, PDG(module, aa)


class TestDependenceGraphTemplate:
    def test_internal_external_split(self):
        graph = DependenceGraph()
        graph.add_node("a", internal=True)
        graph.add_node("x", internal=False)
        graph.add_edge("a", "x", "data", "RAW")
        assert [n.value for n in graph.internal_nodes()] == ["a"]
        assert [n.value for n in graph.external_nodes()] == ["x"]

    def test_subgraph_externalizes_boundary(self):
        graph = DependenceGraph()
        for v in "abc":
            graph.add_node(v)
        graph.add_edge("a", "b", "data", "RAW")
        graph.add_edge("b", "c", "data", "RAW")
        sub = graph.subgraph(["b"])
        internals = [n.value for n in sub.internal_nodes()]
        externals = {n.value for n in sub.external_nodes()}
        assert internals == ["b"]
        assert externals == {"a", "c"}
        assert sub.num_edges() == 2

    def test_remove_node_drops_edges(self):
        graph = DependenceGraph()
        graph.add_edge("a", "b", "control")
        graph.remove_node("a")
        assert graph.num_edges() == 0
        assert not graph.has_node("a")

    def test_dependences_and_dependents(self):
        graph = DependenceGraph()
        graph.add_edge("a", "b", "data", "RAW")
        assert [e.src.value for e in graph.dependences_of("b")] == ["a"]
        assert [e.dst.value for e in graph.dependents_of("a")] == ["b"]

    def test_edge_validation(self):
        import pytest

        graph = DependenceGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", "weird")
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", "data", "XYZ")


class TestPDGConstruction:
    def test_register_dependences_follow_def_use(self):
        module, pdg = build_pdg(
            "int main() { int a = 1; int b = a + 2; return b * 3; }"
        )
        # After folding this may shrink; check on a non-foldable program.
        module, pdg = build_pdg(
            """
int g = 2;
int main() { int a = g + 1; return a * 3; }
"""
        )
        main = module.get_function("main")
        mul = [i for i in main.instructions() if i.opcode == "mul"][0]
        add = [i for i in main.instructions() if i.opcode == "add"][0]
        producers = {e.src.value for e in pdg.dependences_of(mul) if e.is_data()}
        assert add in producers

    def test_memory_raw_dependence(self):
        module, pdg = build_pdg(
            """
int cell = 0;
int main() { cell = 7; return cell; }
"""
        )
        main = module.get_function("main")
        store = [i for i in main.instructions() if isinstance(i, ir.Store)][0]
        load = [i for i in main.instructions() if isinstance(i, ir.Load)][0]
        edges = pdg.edges_between(store, load)
        assert any(e.data_kind == "RAW" and e.is_memory for e in edges)
        # Same scalar global: a must dependence.
        assert any(e.is_must for e in edges)

    def test_disjoint_memory_no_dependence(self):
        module, pdg = build_pdg(
            """
int a = 0;
int b = 0;
int main() { a = 1; return b; }
"""
        )
        main = module.get_function("main")
        store = [i for i in main.instructions() if isinstance(i, ir.Store)][0]
        load = [i for i in main.instructions() if isinstance(i, ir.Load)][0]
        assert not pdg.edges_between(store, load)
        assert pdg.memory_disproved >= 1

    def test_control_dependences(self):
        module, pdg = build_pdg(
            """
int flag = 1;
int main() {
  int r = 0;
  if (flag) { r = 5; }
  return r;
}
"""
        )
        main = module.get_function("main")
        branch = main.entry.terminator
        controlled = [e.dst.value for e in pdg.dependents_of(branch) if e.is_control()]
        assert controlled  # the then-block instructions

    def test_weaker_aa_disproves_less(self):
        source = """
int a[20];
int b[20];
void kernel(int *p, int *q) {
  int i;
  for (i = 0; i < 20; i = i + 1) { q[i] = p[i] + 1; }
}
int main() { kernel(a, b); return b[3]; }
"""
        _, weak = build_pdg(source, strong=False)
        _, strong = build_pdg(source, strong=True)
        assert weak.memory_queries == strong.memory_queries
        assert strong.memory_disproved > weak.memory_disproved


class TestLoopDependenceGraph:
    def _loop_dg(self, source):
        module, pdg = build_pdg(source)
        fn = module.get_function("main")
        loop = LoopInfo(fn).loops()[0]
        return module, pdg.loop_dependence_graph(loop)

    def test_register_loop_carried(self):
        _, ldg = self._loop_dg(
            "int main() { int i; int s = 0; for (i = 0; i < 5; i = i + 1) { s = s + i; } return s; }"
        )
        carried = ldg.loop_carried_edges()
        assert carried
        assert all(not e.is_memory for e in carried if e.is_data())

    def test_affine_accesses_not_carried(self):
        _, ldg = self._loop_dg(
            """
int a[100];
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) { a[i] = a[i] + 1; }
  return a[0];
}
"""
        )
        memory_carried = [
            e for e in ldg.loop_carried_edges() if e.is_memory and e.is_data()
        ]
        assert memory_carried == []

    def test_recurrence_is_carried(self):
        _, ldg = self._loop_dg(
            """
int a[100];
int main() {
  int i;
  for (i = 1; i < 100; i = i + 1) { a[i] = a[i - 1] + 1; }
  return a[99];
}
"""
        )
        memory_carried = [
            e for e in ldg.loop_carried_edges() if e.is_memory and e.is_data()
        ]
        assert memory_carried
        kinds = {e.data_kind for e in memory_carried}
        assert "RAW" in kinds  # the reverse store->load edge materialized

    def test_invariant_address_is_carried(self):
        _, ldg = self._loop_dg(
            """
int cell = 0;
int main() {
  int i;
  for (i = 0; i < 9; i = i + 1) { cell = cell + i; }
  return cell;
}
"""
        )
        memory_carried = [
            e for e in ldg.loop_carried_edges() if e.is_memory and e.is_data()
        ]
        assert memory_carried

    def test_live_ins_and_outs(self):
        module, pdg = build_pdg(
            """
int bound = 10;
int main() {
  int limit = bound * 2;
  int i;
  int s = 0;
  for (i = 0; i < limit; i = i + 1) { s = s + i; }
  return s;
}
"""
        )
        fn = module.get_function("main")
        loop = LoopInfo(fn).loops()[0]
        ldg = pdg.loop_dependence_graph(loop)
        live_in_names = {v.name for v in ldg.live_in_values()}
        assert any("t" in n or "limit" in n for n in live_in_names)
        live_outs = ldg.live_out_values()
        assert len(live_outs) == 1  # the accumulator phi
