"""Sharded-PDG semantics: laziness, pruning, and per-function invalidation.

Three guarantees the performance work must not bend:

* a lazily-sharded PDG is edge-for-edge identical to the eager full
  build, with and without the points-to pair pruning;
* the Figure 3 counters (memory pairs queried/disproved) are unchanged
  by pruning — pruned pairs count as queried-and-disproved;
* ``Noelle.invalidate(fn)`` rebuilds only the mutated function's shard
  and keeps the whole-module analyses warm.
"""

from collections import Counter

import pytest

from repro import ir
from repro.analysis.aa import BasicAliasAnalysis
from repro.analysis.pointsto import AndersenAliasAnalysis
from repro.core.noelle import Noelle
from repro.core.pdg import PDG
from repro.perf import STATS
from repro.tools.meta_pdg_embed import embed_pdg, load_embedded_pdg
from repro.workloads import all_workloads


def edge_multiset(pdg):
    """A comparable multiset of the PDG's edges, keyed by instruction id."""
    return Counter(
        (
            id(edge.src.value),
            id(edge.dst.value),
            edge.kind,
            edge.data_kind,
            edge.is_memory,
            edge.is_must,
        )
        for edge in pdg.edges()
    )


def insert_dead_add(fn) -> ir.Instruction:
    """Mutate ``fn`` in place: a dead add before the entry terminator."""
    block = fn.blocks[0]
    inst = ir.BinaryOp("add", ir.const_int(1), ir.const_int(2), "dead")
    inst.parent = block
    block.instructions.insert(len(block.instructions) - 1, inst)
    fn.assign_name(inst)
    return inst


def two_function_module():
    """Two independent memory-touching functions in one module."""
    module = ir.Module("twofn")
    for name in ("first", "second"):
        fn = module.add_function(name, ir.FunctionType(ir.I64, []), [])
        builder, _entry = ir.build_function(fn)
        cell = builder.alloca(ir.I64, f"{name}.cell")
        builder.store(ir.const_int(7), cell)
        loaded = builder.load(cell, f"{name}.val")
        builder.ret(loaded)
    ir.verify_module(module)
    return module


# -- lazy/eager and pruned/unpruned equivalence ---------------------------------------


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_lazy_sharded_pdg_matches_eager_build(workload):
    module = workload.compile()
    aa = AndersenAliasAnalysis(module)
    eager = PDG(module, aa, lazy=False)
    lazy = PDG(module, aa)
    # Drive the lazy graph the way tools do: one function at a time.
    for fn in module.defined_functions():
        lazy.function_dependence_graph(fn)
    assert edge_multiset(lazy) == edge_multiset(eager)
    assert lazy.num_nodes() == eager.num_nodes()
    assert lazy.memory_queries == eager.memory_queries
    assert lazy.memory_disproved == eager.memory_disproved


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
@pytest.mark.parametrize("aa_factory", [
    pytest.param(lambda m: BasicAliasAnalysis(), id="basic"),
    pytest.param(lambda m: AndersenAliasAnalysis(m), id="andersen"),
])
def test_partition_pruning_preserves_edges_and_fig3_counters(workload, aa_factory):
    module = workload.compile()
    aa = aa_factory(module)
    pruned = PDG(module, aa, partition=True)
    exact = PDG(module, aa, partition=False)
    assert edge_multiset(pruned) == edge_multiset(exact)
    # Figure 3 semantics: every pruned pair still counts as one query
    # that the alias analysis disproved.
    assert pruned.memory_queries == exact.memory_queries
    assert pruned.memory_disproved == exact.memory_disproved


# -- per-function invalidation --------------------------------------------------------


def test_invalidate_fn_rebuilds_only_the_mutated_shard():
    noelle = Noelle(two_function_module())
    pdg = noelle.pdg()
    pdg.materialize()
    first, second = list(noelle.module.defined_functions())

    builds_before = STATS.get("pdg.shard_builds")
    insert_dead_add(first)
    noelle.invalidate(first)
    assert noelle.pdg() is pdg  # the graph container survives
    pdg.materialize()
    assert STATS.get("pdg.shard_builds") - builds_before == 1

    # The untouched function's shard never left the graph.
    assert {fn.name for fn in pdg.built_functions()} == {"first", "second"}
    node_names = {node.value.name for node in pdg.nodes() if node.value.name}
    assert "dead" in node_names


def test_invalidate_fn_keeps_whole_module_analyses_warm():
    noelle = Noelle(two_function_module())
    aa = noelle.alias_analysis()
    pointsto = noelle.points_to()
    noelle.pdg().materialize()
    first = next(iter(noelle.module.defined_functions()))

    insert_dead_add(first)
    noelle.invalidate(first)
    assert noelle.alias_analysis() is aa
    assert noelle.points_to() is pointsto

    # The full drop is still available as the conservative escape hatch.
    noelle.invalidate()
    assert noelle.alias_analysis() is not aa


def test_invalidate_fn_matches_fresh_build_after_mutation():
    module = two_function_module()
    noelle = Noelle(module)
    pdg = noelle.pdg()
    pdg.materialize()
    first = next(iter(module.defined_functions()))

    insert_dead_add(first)
    noelle.invalidate(first)
    rebuilt = noelle.pdg()
    fresh = PDG(module, AndersenAliasAnalysis(module), lazy=False)
    assert edge_multiset(rebuilt) == edge_multiset(fresh)
    assert rebuilt.memory_queries == fresh.memory_queries
    assert rebuilt.memory_disproved == fresh.memory_disproved


def test_invalidate_resets_dataflow_engine_and_environment_builder():
    # Regression: these two caches used to survive a full invalidation.
    noelle = Noelle(two_function_module())
    dfe = noelle.dataflow_engine()
    env = noelle.environment_builder()
    noelle.invalidate()
    assert noelle._dfe is None
    assert noelle._env_builder is None
    assert noelle.dataflow_engine() is not dfe
    assert noelle.environment_builder() is not env


def test_embedded_pdg_falls_back_to_full_invalidation():
    # A metadata-rehydrated PDG has no alias analysis to rebuild a shard
    # with, so per-function invalidation must degrade to the full drop.
    module = two_function_module()
    embed_pdg(module)
    noelle = Noelle(module)
    noelle._pdg = load_embedded_pdg(module)
    assert noelle._pdg is not None and noelle._pdg.aa is None
    first = next(iter(module.defined_functions()))
    noelle.invalidate(first)
    assert noelle._pdg is None


def test_embedded_pdg_round_trips_through_shards():
    module = two_function_module()
    original = embed_pdg(module)
    loaded = load_embedded_pdg(module)
    assert edge_multiset(loaded) == edge_multiset(original)
    assert loaded.memory_queries == original.memory_queries
    assert loaded.memory_disproved == original.memory_disproved


# -- adopt_pdg: the public seam noelle-load uses -------------------------------------


def test_adopt_pdg_installs_and_drops_dependent_caches():
    from repro.frontend.codegen import compile_source

    module = compile_source(
        """
int a[40];
int main() {
  int i; int s = 0;
  for (i = 0; i < 40; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return s;
}
""",
        "loopy",
    )
    noelle = Noelle(module)
    stale_loops = noelle.loops()  # built against the self-computed PDG
    assert stale_loops  # the workload has a loop
    embed_pdg(module)
    loaded = load_embedded_pdg(module)
    noelle.adopt_pdg(loaded)
    assert noelle.pdg() is loaded
    fresh_loops = noelle.loops()
    assert fresh_loops is not stale_loops
    assert fresh_loops
    assert all(loop.pdg is loaded for loop in fresh_loops)


def test_noelle_load_adopts_embedded_pdg():
    from repro.tools.pipeline import load

    module = two_function_module()
    embedded = embed_pdg(module)
    noelle = load(module)
    assert edge_multiset(noelle.pdg()) == edge_multiset(embedded)
    # The adopted PDG is the rehydrated one (no alias analysis attached),
    # not a recomputation.
    assert noelle.pdg().aa is None
