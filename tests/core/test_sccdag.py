"""aSCCDAG tests: condensation, classification, topological order."""

from repro.core import Noelle
from repro.core.sccdag import SCC
from repro.frontend import compile_source


def sccdag_of(source, loop_index=0):
    module = compile_source(source)
    noelle = Noelle(module)
    loop = noelle.loops()[loop_index]
    return loop, loop.sccdag


class TestClassification:
    def test_pure_doall_loop(self):
        _, dag = sccdag_of(
            """
int a[50];
int main() {
  int i;
  for (i = 0; i < 50; i = i + 1) { a[i] = i * 2; }
  return a[0];
}
"""
        )
        assert not dag.sequential_sccs()
        assert not dag.reducible_sccs()
        induction = [s for s in dag.sccs if s.is_induction]
        assert induction  # the governing IV cycle is independent

    def test_reduction_detected(self):
        _, dag = sccdag_of(
            """
int a[50];
int main() {
  int i; int s = 0;
  for (i = 0; i < 50; i = i + 1) { s = s + a[i]; }
  return s;
}
"""
        )
        reducible = dag.reducible_sccs()
        assert len(reducible) == 1
        descriptor = reducible[0].reduction
        assert descriptor is not None
        assert descriptor.operator == "add"
        assert descriptor.identity == 0

    def test_float_multiply_reduction(self):
        _, dag = sccdag_of(
            """
double a[20];
double main() {
  int i; double p = 1.0;
  for (i = 0; i < 20; i = i + 1) { p = p * (a[i] + 1.0); }
  return p;
}
"""
        )
        reducible = dag.reducible_sccs()
        assert len(reducible) == 1
        assert reducible[0].reduction.operator == "fmul"
        assert reducible[0].reduction.identity == 1.0

    def test_memory_recurrence_is_sequential(self):
        _, dag = sccdag_of(
            """
int a[50];
int main() {
  int i;
  for (i = 1; i < 50; i = i + 1) { a[i] = a[i - 1] * 2; }
  return a[49];
}
"""
        )
        assert dag.sequential_sccs()

    def test_register_recurrence_non_reduction_is_sequential(self):
        # x = x * 2 + 1 is affine but not a plain reduction (mixed ops).
        _, dag = sccdag_of(
            """
int main() {
  int i; int x = 1;
  for (i = 0; i < 20; i = i + 1) { x = x * 2 + 1; }
  return x;
}
"""
        )
        assert dag.sequential_sccs()

    def test_accumulator_used_in_loop_not_reducible(self):
        # The running value is observed inside the loop, so cloning the
        # accumulator would change semantics.
        _, dag = sccdag_of(
            """
int a[30];
int main() {
  int i; int s = 0;
  for (i = 0; i < 30; i = i + 1) {
    s = s + i;
    a[i] = s;
  }
  return a[29];
}
"""
        )
        assert not dag.reducible_sccs()
        assert dag.sequential_sccs()


class TestStructure:
    def test_scc_of_lookup(self):
        loop, dag = sccdag_of(
            """
int main() {
  int i; int s = 0;
  for (i = 0; i < 5; i = i + 1) { s = s + i; }
  return s;
}
"""
        )
        for phi in loop.structure.header.phis():
            assert dag.scc_of(phi) is not None

    def test_topological_order_respects_edges(self):
        loop, dag = sccdag_of(
            """
int a[40];
int main() {
  int i; int s = 0;
  for (i = 0; i < 40; i = i + 1) {
    int x = i * 3;
    int y = x + 1;
    s = s + y;
  }
  return s;
}
"""
        )
        order = dag.topological_order()
        position = {id(s): k for k, s in enumerate(order)}
        for edge in dag.edges():
            assert position[id(edge.src.value)] < position[id(edge.dst.value)]

    def test_every_instruction_in_exactly_one_scc(self):
        loop, dag = sccdag_of(
            """
int a[10];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { a[i] = i; }
  return a[1];
}
"""
        )
        counted = sum(len(s.instructions) for s in dag.sccs)
        assert counted == loop.structure.num_instructions()
