"""Scheduler (SCD) and IV stepper (IVS) tests."""

import pytest

from repro import ir
from repro.core import Noelle
from repro.core.ivstepper import InductionVariableStepper, IVStepperError
from repro.frontend import compile_source
from repro.interp import Interpreter, run_module


HEADER_HEAVY_LOOP = """
int a[60];
int out[60];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 60; i = i + 1) {
    int x = a[i] * 3;
    int y = x + 7;
    out[i] = y;
  }
  return out[5];
}
"""


class TestBasicBlockScheduler:
    def test_reorder_preserves_semantics(self):
        module = compile_source(HEADER_HEAVY_LOOP)
        expected = Interpreter(module).run().return_value
        noelle = Noelle(module)
        fn = module.get_function("main")
        scheduler = noelle.basic_block_scheduler(fn)
        # Schedule with an adversarial priority: prefer expensive ops first.
        for block in fn.blocks:
            scheduler.schedule_block(
                block, priority=lambda i: -ord(i.opcode[0])
            )
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected

    def test_dependences_respected(self):
        module = compile_source(HEADER_HEAVY_LOOP)
        noelle = Noelle(module)
        fn = module.get_function("main")
        scheduler = noelle.basic_block_scheduler(fn)
        for block in fn.blocks:
            scheduler.schedule_block(block)
            for index, inst in enumerate(block.instructions):
                for operand in inst.operands:
                    if isinstance(operand, ir.Instruction) and operand.parent is block:
                        if not isinstance(inst, ir.Phi):
                            assert block.instructions.index(operand) < index


class TestGenericScheduler:
    def test_cannot_move_phi_or_terminator(self, count_loop):
        module, fn, v = count_loop
        noelle = Noelle(module)
        scheduler = noelle.scheduler(fn)
        assert not scheduler.can_move_to_end(v["i"], v["body"])
        assert not scheduler.can_move_to_end(v["header"].terminator, v["body"])

    def test_cannot_move_above_producer(self, count_loop):
        module, fn, v = count_loop
        noelle = Noelle(module)
        scheduler = noelle.scheduler(fn)
        # acc.next uses phis of the header: moving it to entry would
        # put it before its producers.
        assert not scheduler.can_move_to_end(v["acc_next"], v["entry"])

    def test_legal_move_executes(self):
        module = compile_source(HEADER_HEAVY_LOOP)
        expected = Interpreter(module).run().return_value
        noelle = Noelle(module)
        fn = module.get_function("main")
        # Find a movable arithmetic instruction and sink it within its block.
        moved = 0
        scheduler = noelle.scheduler(fn)
        for inst in list(fn.instructions()):
            if inst.opcode == "mul" and inst.parent is not None:
                if scheduler.move_to_end(inst, inst.parent):
                    moved += 1
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected


class TestLoopScheduler:
    def test_shrink_header_moves_non_control_work(self):
        source = """
int a[60];
int main() {
  int i = 0;
  int s = 0;
  while (i < 60) {
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
"""
        module = compile_source(source)
        expected = Interpreter(module).run().return_value
        noelle = Noelle(module)
        fn = module.get_function("main")
        loop = noelle.loop_info(fn).loops()[0]
        header_size_before = len(loop.header.instructions)
        moved = noelle.loop_scheduler(fn).shrink_header(loop)
        ir.verify_function(fn)
        assert Interpreter(module).run().return_value == expected
        if moved:
            assert len(loop.header.instructions) < header_size_before


class TestIVStepper:
    def _loop_with_iv(self, source):
        module = compile_source(source)
        noelle = Noelle(module)
        loop = noelle.loops()[0]
        return module, loop, loop.governing_iv()

    def test_set_step_changes_trip_count(self):
        module, loop, iv = self._loop_with_iv(
            """
int hits = 0;
int main() {
  int i;
  for (i = 0; i < 12; i = i + 1) { hits = hits + 1; }
  return hits;
}
"""
        )
        stepper = InductionVariableStepper(iv)
        stepper.set_step(ir.const_int(3))
        ir.verify_function(loop.structure.function)
        assert Interpreter(module).run().return_value == 4  # 0,3,6,9

    def test_set_start(self):
        module, loop, iv = self._loop_with_iv(
            """
int hits = 0;
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { hits = hits + 1; }
  return hits;
}
"""
        )
        InductionVariableStepper(iv).set_start(ir.const_int(6))
        assert Interpreter(module).run().return_value == 4  # 6..9

    def test_reverse_step(self):
        module, loop, iv = self._loop_with_iv(
            """
int hits = 0;
int main() {
  int i;
  for (i = 10; i > 0; i = i - 1) { hits = hits + 1; }
  return hits;
}
"""
        )
        stepper = InductionVariableStepper(iv)
        # Reversing -1 to +1 with condition i > 0 starting at 10 would run
        # away; instead verify the arithmetic rewiring on a copy.
        index = stepper.current_step_operand_index()
        before = stepper.update.operands[index]
        builder = ir.IRBuilder()
        builder.position_before(stepper.update)
        stepper.reverse_step(builder)
        after = stepper.update.operands[index]
        assert isinstance(before, ir.ConstantInt)
        assert isinstance(after, ir.ConstantInt)
        assert after.value == -before.value

    def test_chunking_covers_iteration_space(self):
        # Simulate 3 cores by chunking three separate copies and summing.
        totals = []
        for core in range(3):
            module, loop, iv = self._loop_with_iv(
                """
int hits = 0;
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) { hits = hits + i; }
  return hits;
}
"""
            )
            stepper = InductionVariableStepper(iv)
            pre = loop.structure.pre_header()
            builder = ir.IRBuilder()
            builder.position_before(pre.terminator)
            stepper.chunk_for_core(
                builder, ir.const_int(core), ir.const_int(3)
            )
            ir.verify_function(loop.structure.function)
            totals.append(Interpreter(module).run().return_value)
        assert sum(totals) == sum(range(20))

    def test_rejects_multi_update_ivs(self):
        module = compile_source(
            """
int main() {
  int i = 0;
  int s = 0;
  while (i < 30) {
    if (s % 2 == 0) { i = i + 1; } else { i = i + 2; }
    s = s + 1;
  }
  return s;
}
"""
        )
        noelle = Noelle(module)
        loops = noelle.loops()
        manager = loops[0].induction_variables
        for iv in manager.all_ivs():
            with pytest.raises(IVStepperError):
                InductionVariableStepper(iv)
