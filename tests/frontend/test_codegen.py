"""MiniC end-to-end semantics: compile + interpret, check results."""

import pytest

from repro.frontend import CodegenError, compile_source
from repro.interp import run_module
from tests.conftest import compile_and_run


def returns(source, expected):
    result = compile_and_run(source)
    assert result.trapped is None, result.trapped
    assert result.return_value == expected


class TestArithmetic:
    def test_integer_ops(self):
        returns("int main() { return 7 + 3 * 2 - 4 / 2; }", 11)

    def test_c_division_truncates_toward_zero(self):
        returns("int main() { return (0 - 7) / 2; }", -3)
        returns("int main() { return (0 - 7) % 2; }", -1)

    def test_bitwise(self):
        returns("int main() { return (12 & 10) | (1 ^ 3); }", 10)
        returns("int main() { return 1 << 5; }", 32)
        returns("int main() { return 1024 >> 3; }", 128)

    def test_precedence(self):
        returns("int main() { return 2 + 3 * 4; }", 14)
        returns("int main() { return (2 + 3) * 4; }", 20)

    def test_unary_minus_and_not(self):
        returns("int main() { int x = 5; return -x + 1; }", -4)
        returns("int main() { return !0 + !7; }", 1)

    def test_float_arithmetic(self):
        result = compile_and_run(
            "double main() { return 1.5 * 4.0 - 1.0 / 2.0; }"
        )
        assert result.return_value == pytest.approx(5.5)

    def test_int_float_promotion(self):
        result = compile_and_run("double main() { return 3 * 0.5; }")
        assert result.return_value == pytest.approx(1.5)

    def test_explicit_casts(self):
        returns("int main() { return (int)3.99; }", 3)
        result = compile_and_run("double main() { return (double)7 / 2; }")
        assert result.return_value == pytest.approx(3.5)

    def test_sizeof(self):
        returns("int main() { return sizeof(int) + sizeof(double); }", 2)
        returns("struct P { int a; int b; };\nint main() { return sizeof(struct P); }", 2)


class TestControlFlow:
    def test_if_else(self):
        returns("int main() { int x = 3; if (x > 2) { return 1; } else { return 0; } }", 1)

    def test_if_without_else(self):
        returns("int main() { int x = 1; if (x > 2) { x = 99; } return x; }", 1)

    def test_while(self):
        returns("int main() { int i = 0; while (i < 10) { i = i + 2; } return i; }", 10)

    def test_do_while_runs_once(self):
        returns("int main() { int i = 100; do { i = i + 1; } while (i < 10); return i; }", 101)

    def test_for(self):
        returns(
            "int main() { int s = 0; int i; for (i = 1; i <= 5; i = i + 1) { s = s + i; } return s; }",
            15,
        )

    def test_break_continue(self):
        returns(
            """
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 9) { break; }
    s = s + i;
  }
  return s;
}
""",
            1 + 3 + 5 + 7 + 9,
        )

    def test_nested_loops(self):
        returns(
            """
int main() {
  int total = 0;
  int i;
  int j;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      total = total + i * j;
    }
  }
  return total;
}
""",
            sum(i * j for i in range(4) for j in range(3)),
        )

    def test_switch(self):
        source = """
int classify(int x) {
  switch (x) {
    case 1: return 10;
    case 2: return 20;
    default: return -1;
  }
}
int main() { return classify(1) + classify(2) + classify(9); }
"""
        returns(source, 29)

    def test_switch_fallthrough(self):
        source = """
int main() {
  int x = 0;
  switch (2) {
    case 1: x = x + 1;
    case 2: x = x + 10;
    case 3: x = x + 100;
      break;
    case 4: x = x + 1000;
  }
  return x;
}
"""
        returns(source, 110)

    def test_short_circuit_and(self):
        source = """
int side = 0;
int bump() { side = side + 1; return 1; }
int main() {
  int r = 0;
  if (0 && bump()) { r = 1; }
  return side;
}
"""
        returns(source, 0)

    def test_short_circuit_or(self):
        source = """
int side = 0;
int bump() { side = side + 1; return 0; }
int main() {
  if (1 || bump()) { return side; }
  return -1;
}
"""
        returns(source, 0)


class TestMemory:
    def test_global_init_and_update(self):
        returns("int g = 5;\nint main() { g = g + 2; return g; }", 7)

    def test_arrays_1d(self):
        returns(
            """
int a[10];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
  return a[7];
}
""",
            49,
        )

    def test_arrays_2d(self):
        returns(
            """
int m[4][5];
int main() {
  int i;
  int j;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 5; j = j + 1) { m[i][j] = i * 10 + j; }
  }
  return m[2][3];
}
""",
            23,
        )

    def test_local_arrays(self):
        returns(
            "int main() { int a[4]; a[0] = 1; a[3] = 9; return a[0] + a[3]; }",
            10,
        )

    def test_pointers_and_address_of(self):
        returns(
            """
int main() {
  int x = 3;
  int *p = &x;
  *p = 11;
  return x;
}
""",
            11,
        )

    def test_pointer_arithmetic(self):
        returns(
            """
int buf[5];
int main() {
  int *p = buf;
  *(p + 2) = 42;
  return buf[2];
}
""",
            42,
        )

    def test_pointer_params(self):
        returns(
            """
void write_to(int *dst, int value) { *dst = value; }
int main() { int x = 0; write_to(&x, 17); return x; }
""",
            17,
        )

    def test_malloc_free(self):
        returns(
            """
int main() {
  int *p = (int *)malloc(4);
  p[0] = 1; p[3] = 2;
  int r = p[0] + p[3];
  free((char *)p);
  return r;
}
""",
            3,
        )

    def test_structs(self):
        returns(
            """
struct Point { int x; int y; };
int main() {
  struct Point p;
  p.x = 3;
  p.y = 4;
  return p.x * p.x + p.y * p.y;
}
""",
            25,
        )

    def test_struct_pointers_arrow(self):
        returns(
            """
struct Node { int value; int pad; };
int main() {
  struct Node n;
  struct Node *p = &n;
  p->value = 8;
  return n.value;
}
""",
            8,
        )

    def test_char_type(self):
        returns(
            """
char buf[4];
int main() {
  buf[0] = (char)65;
  return buf[0];
}
""",
            65,
        )


class TestFunctions:
    def test_recursion(self):
        returns(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n"
            "int main() { return fib(10); }",
            55,
        )

    def test_void_function(self):
        returns(
            """
int g = 0;
void set_g(int v) { g = v; }
int main() { set_g(9); return g; }
""",
            9,
        )

    def test_function_pointers(self):
        returns(
            """
int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }
int main() {
  int (*op)(int);
  op = twice;
  int a = op(10);
  op = thrice;
  return a + op(10);
}
""",
            50,
        )

    def test_missing_return_defaults_to_zero(self):
        returns("int main() { int x = 5; x = x + 1; }", 0)

    def test_print_outputs(self):
        result = compile_and_run(
            "int main() { print_int(1); print_int(2); print_float(0.5); return 0; }"
        )
        assert result.output == [1, 2, 0.5]


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(CodegenError):
            compile_source("int main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(CodegenError):
            compile_source("int main() { return mystery(1); }")

    def test_break_outside_loop(self):
        with pytest.raises(CodegenError):
            compile_source("int main() { break; return 0; }")

    def test_bad_deref(self):
        with pytest.raises(CodegenError):
            compile_source("int main() { int x = 1; return *x; }")

    def test_unknown_struct_field(self):
        with pytest.raises(CodegenError):
            compile_source(
                "struct P { int a; };\nint main() { struct P p; return p.b; }"
            )

    def test_non_constant_global_init(self):
        with pytest.raises(CodegenError):
            compile_source("int helper() { return 1; }\nint g = helper();")
