"""Lexer and parser unit tests for MiniC."""

import pytest

from repro.frontend import LexError, SyntaxErrorMiniC, parse_program, tokenize
from repro.frontend import ast as minic_ast


class TestLexer:
    def test_tokens_and_eof(self):
        tokens = tokenize("int x = 42;")
        assert [t.kind for t in tokens] == ["keyword", "ident", "op", "int", "op", "eof"]

    def test_float_literals(self):
        tokens = tokenize("1.5 2.0e3 0.25")
        assert [t.kind for t in tokens[:3]] == ["float"] * 3

    def test_maximal_munch_operators(self):
        tokens = tokenize("a <= b >> 2 && c")
        texts = [t.text for t in tokens if t.kind == "op"]
        assert texts == ["<=", ">>", "&&"]

    def test_line_comments(self):
        tokens = tokenize("int a; // comment\nint b;")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_block_comments_track_lines(self):
        tokens = tokenize("/* one\ntwo */ int x;")
        assert tokens[0].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int $bad;")

    def test_line_numbers(self):
        tokens = tokenize("int a;\nint b;")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2


class TestParserTopLevel:
    def test_struct_definition(self):
        program = parse_program("struct P { int x; double y; };")
        assert len(program.structs) == 1
        struct = program.structs[0]
        assert struct.name == "P"
        assert [name for _, name, _ in struct.fields] == ["x", "y"]

    def test_global_with_dims(self):
        program = parse_program("int grid[4][5];")
        decl = program.globals[0]
        assert decl.dims == [4, 5]

    def test_global_initializer(self):
        program = parse_program("int g = -3;")
        assert isinstance(program.globals[0].initializer, minic_ast.UnaryExpr)

    def test_function_definition_and_declaration(self):
        program = parse_program("int f(int a, double b);\nint f(int a, double b) { return a; }")
        assert program.functions[0].body is None
        assert program.functions[1].body is not None
        assert [p.name for p in program.functions[1].params] == ["a", "b"]

    def test_function_pointer_declarator(self):
        program = parse_program("int main() { int (*op)(int, int); return 0; }")
        decl = program.functions[0].body.statements[0]
        assert isinstance(decl.type_ref, minic_ast.FuncPtrTypeRef)
        assert len(decl.type_ref.params) == 2

    def test_void_parameter_list(self):
        program = parse_program("int f(void) { return 1; }")
        assert program.functions[0].params == []


class TestParserStatements:
    def _body(self, text):
        return parse_program(f"int main() {{ {text} }}").functions[0].body.statements

    def test_for_with_declaration_init(self):
        statements = self._body("for (int i = 0; i < 3; i = i + 1) { }")
        loop = statements[0]
        assert isinstance(loop, minic_ast.For)
        assert isinstance(loop.init, minic_ast.Declaration)

    def test_for_with_empty_clauses(self):
        statements = self._body("for (;;) { break; }")
        loop = statements[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_do_while(self):
        statements = self._body("do { } while (1);")
        assert isinstance(statements[0], minic_ast.DoWhile)

    def test_switch_cases(self):
        statements = self._body(
            "switch (2) { case 1: break; case 2: break; default: break; }"
        )
        switch = statements[0]
        assert [c.value for c in switch.cases] == [1, 2, None]

    def test_dangling_else_binds_inner(self):
        statements = self._body("if (1) if (0) return 1; else return 2; return 3;")
        outer = statements[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None


class TestParserExpressions:
    def _expr(self, text):
        program = parse_program(f"int main() {{ return {text}; }}")
        return program.functions[0].body.statements[0].value

    def test_precedence_tree(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_left_associativity(self):
        expr = self._expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.lhs.op == "-"

    def test_comparison_chain(self):
        expr = self._expr("a < b == c")
        assert expr.op == "=="
        assert expr.lhs.op == "<"

    def test_call_with_nested_index(self):
        expr = self._expr("f(a[i + 1], 2)")
        assert isinstance(expr, minic_ast.CallExpr)
        assert isinstance(expr.args[0], minic_ast.IndexExpr)

    def test_field_chain(self):
        expr = self._expr("p->inner.value")
        assert isinstance(expr, minic_ast.FieldExpr)
        assert expr.field == "value"
        assert expr.base.arrow is True

    def test_cast_vs_parenthesized(self):
        cast = self._expr("(int)x")
        assert isinstance(cast, minic_ast.CastExpr)
        grouped = self._expr("(x)")
        assert isinstance(grouped, minic_ast.NameRef)

    def test_address_and_deref(self):
        expr = self._expr("*&x")
        assert expr.op == "*"
        assert expr.operand.op == "&"


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(SyntaxErrorMiniC):
            parse_program("int main() { return 1 }")

    def test_bad_toplevel(self):
        with pytest.raises(SyntaxErrorMiniC):
            parse_program("return 1;")

    def test_unbalanced_braces(self):
        with pytest.raises(SyntaxErrorMiniC):
            parse_program("int main() { if (1) { return 0; }")

    def test_non_integer_array_length(self):
        with pytest.raises(SyntaxErrorMiniC):
            parse_program("int a[x];")

    def test_case_without_label(self):
        with pytest.raises(SyntaxErrorMiniC):
            parse_program("int main() { switch (1) { return 2; } }")
