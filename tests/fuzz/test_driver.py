"""Campaign driver: fan-out, bundles, fixtures, locked report schema."""

import json

import pytest

from repro.fuzz.driver import (
    SEED_STRIDE,
    _write_bundle,
    _write_fixture,
    run_campaign,
    run_case,
)
from repro.robust.diagnostics import CrashBundle

REPORT_KEYS = {"index", "pass", "module_ir", "error", "diagnostics"}
ERROR_KEYS = {"pass", "phase", "kind", "message", "fault", "seconds", "traceback"}


def _fake_record(seed: int = 3) -> dict:
    case = run_case(seed, oracles=())
    program_seed = seed
    from repro.fuzz.gen import generate_program

    program = generate_program(program_seed)
    return {
        "oracle": "engine",
        "detail": "synthetic divergence for schema tests",
        "name": program.name,
        "family": program.family,
        "seed": program_seed,
        "choices": list(program.choices),
        "technique": case.technique,
        "source": program.source,
    }


class TestCampaign:
    def test_sequential_campaign_is_clean(self):
        report = run_campaign(seed=1, count=3, jobs=1)
        assert report.ok, report.summary()
        assert report.cases_run == 3
        assert "OK" in report.summary()

    @pytest.mark.slow
    def test_parallel_campaign_matches_sequential(self):
        seq = run_campaign(seed=2, count=4, jobs=1)
        par = run_campaign(seed=2, count=4, jobs=2)
        assert seq.ok and par.ok
        assert seq.cases_run == par.cases_run == 4

    def test_case_seeds_are_strided(self):
        report = run_campaign(seed=5, count=1, jobs=1)
        assert report.ok
        case = run_case(5 * SEED_STRIDE)
        assert case.seed == 5 * SEED_STRIDE

    def test_progress_callback_fires_per_case(self):
        ticks = []
        run_campaign(
            seed=1,
            count=2,
            jobs=1,
            oracles=("engine",),
            progress=lambda done, total, found: ticks.append((done, total)),
        )
        assert ticks == [(1, 2), (2, 2)]


class TestBundleSchema:
    def test_fuzz_bundle_report_matches_locked_schema(self, tmp_path):
        record = _fake_record()
        path = _write_bundle(record, tmp_path, index=0)
        report = json.loads(
            (tmp_path / "000-fuzz-engine" / "report.json").read_text()
        )
        assert set(report.keys()) == REPORT_KEYS
        assert set(report["error"].keys()) == ERROR_KEYS
        assert report["pass"] == "fuzz-engine"
        assert report["error"]["phase"] == "fuzz"
        assert report["error"]["kind"] == "Divergence"
        # Round-trips through the bundle reader like any crash bundle.
        bundle = CrashBundle.read(path)
        assert bundle.error.message == record["detail"]

    def test_bundle_carries_program_and_trace(self, tmp_path):
        record = _fake_record()
        path = _write_bundle(record, tmp_path, index=0)
        from pathlib import Path

        bundle_dir = Path(path)
        assert (bundle_dir / "program.mc").read_text() == record["source"]
        trace = json.loads((bundle_dir / "trace.json").read_text())
        assert trace["choices"] == record["choices"]
        assert trace["technique"] == record["technique"]

    def test_fixture_payload_is_replayable(self, tmp_path):
        record = _fake_record()
        path = _write_fixture(record, tmp_path)
        payload = json.loads(open(path).read())
        assert set(payload.keys()) == {
            "name",
            "oracle",
            "technique",
            "seed",
            "family",
            "choices",
            "source",
            "detail",
        }
        from repro.fuzz.gen import program_from_choices

        assert (
            program_from_choices(payload["choices"]).source
            == payload["source"]
        )


class TestGeneratedFamilies:
    def test_register_unregister_round_trip(self):
        from repro.workloads import registry
        from repro.workloads.generated import (
            register_generated,
            unregister_generated,
        )

        before = len(registry.all_workloads())
        try:
            added = register_generated(
                families=("independent",), per_family=2
            )
            assert len(added) == 2
            assert len(registry.all_workloads()) == before + 2
            # Idempotent.
            register_generated(families=("independent",), per_family=2)
            assert len(registry.all_workloads()) == before + 2
        finally:
            unregister_generated()
        assert len(registry.all_workloads()) == before

    @pytest.mark.slow
    def test_generated_families_run_through_corpus(self):
        from repro.testing.harness import ToolConfig, run_corpus
        from repro.workloads.generated import (
            as_micro_tests,
            generated_workloads,
        )

        tests = as_micro_tests(
            generated_workloads(
                families=("independent", "reduction"), per_family=1
            )
        )
        outcomes = run_corpus(
            configs=[ToolConfig("doall", ["doall"])], tests=tests, jobs=2
        )
        failed = [o for o in outcomes if not o.passed]
        assert failed == [], failed
