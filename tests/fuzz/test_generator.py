"""The decision-trace program generator: deterministic, total, valid."""

import pytest

from repro.frontend.codegen import compile_source
from repro.fuzz.gen import SHAPES, generate_program, program_from_choices
from repro.fuzz.trace import DecisionTrace, TraceError
from repro.interp.interp import Interpreter


class TestDecisionTrace:
    def test_record_mode_is_seeded(self):
        a = DecisionTrace(seed=7)
        b = DecisionTrace(seed=7)
        assert [a.draw(10) for _ in range(20)] == [
            b.draw(10) for _ in range(20)
        ]

    def test_replay_clamps_and_defaults(self):
        t = DecisionTrace(choices=[99, 1])
        assert t.draw(5) == 4  # clamped to n-1
        assert t.draw(5) == 1
        assert t.draw(5) == 0  # exhausted -> simplest choice
        # The log records effective values, so replaying it reproduces.
        assert t.choices == (4, 1, 0)

    def test_rejects_malformed_traces(self):
        with pytest.raises(TraceError):
            DecisionTrace(choices=[-1])
        with pytest.raises(TraceError):
            DecisionTrace(choices=["x"])
        with pytest.raises(TraceError):
            DecisionTrace(seed=1, choices=[1])
        with pytest.raises(TraceError):
            DecisionTrace()
        with pytest.raises(TraceError):
            DecisionTrace(seed=1).draw(0)


class TestGenerator:
    def test_same_seed_same_program(self):
        assert generate_program(42).source == generate_program(42).source

    def test_replay_reproduces_byte_for_byte(self):
        for seed in range(20):
            program = generate_program(seed)
            replayed = program_from_choices(program.choices)
            assert replayed.source == program.source
            assert replayed.choices == program.choices  # normalized

    def test_totality_on_junk_traces(self):
        """Any integer sequence maps to a compilable program."""
        junk = [
            (),
            (0,) * 100,
            (10**9, 3, 10**9),
            tuple(range(50, 0, -1)),
        ]
        for choices in junk:
            program = program_from_choices(choices)
            compile_source(program.source, program.name)

    def test_family_forces_every_loop_shape(self):
        for family in SHAPES:
            program = generate_program(5, family=family)
            assert program.family == family
            compile_source(program.source, program.name)

    def test_generated_programs_run_clean(self):
        """No traps, bounded steps: divergences are never input bugs."""
        for seed in range(12):
            program = generate_program(seed)
            module = compile_source(program.source, program.name)
            result = Interpreter(module, step_limit=2_000_000).run()
            assert result.trapped is None, (seed, result.trapped)
            assert result.output, seed  # every program prints checksums
