"""The trace minimizer: idempotent, deterministic, budget-bounded."""

from repro.fuzz.gen import generate_program, program_from_choices
from repro.fuzz.minimize import minimize_choices


def _wants_dowhile(choices) -> bool:
    return "do {" in program_from_choices(choices).source


def _wants_reduction(choices) -> bool:
    program = program_from_choices(choices)
    return program.family == "reduction"


class TestMinimizer:
    def test_shrinks_while_preserving_predicate(self):
        # Find a seed whose program has a do-while loop.
        seed = next(
            s for s in range(200) if "do {" in generate_program(s).source
        )
        original = generate_program(seed).choices
        minimized = minimize_choices(original, _wants_dowhile)
        assert _wants_dowhile(minimized)
        assert len(minimized) <= len(original)

    def test_idempotent(self):
        seed = next(
            s
            for s in range(200)
            if generate_program(s).family == "reduction"
        )
        original = generate_program(seed).choices
        once = minimize_choices(original, _wants_reduction)
        twice = minimize_choices(once, _wants_reduction)
        assert once == twice

    def test_deterministic(self):
        original = generate_program(11).choices
        runs = [
            minimize_choices(original, _wants_dowhile)
            if _wants_dowhile(original)
            else minimize_choices(original, _wants_reduction)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_non_failing_trace_returned_normalized(self):
        original = (10**9, 10**9, 10**9)
        result = minimize_choices(original, lambda choices: False)
        assert result == program_from_choices(original).choices

    def test_budget_is_respected(self):
        evaluations = []

        def predicate(choices):
            evaluations.append(choices)
            return _wants_reduction(choices)

        seed = next(
            s
            for s in range(200)
            if generate_program(s).family == "reduction"
        )
        minimize_choices(
            generate_program(seed).choices, predicate, max_evaluations=10
        )
        assert len(evaluations) <= 10

    def test_pointwise_lowering_finds_smallest_value(self):
        # The all-zero trace yields an "independent" for-loop program;
        # reaching "reduction" needs exactly one raised entry, and the
        # minimizer must binary-search it down to the smallest value
        # that still selects the reduction shape.
        seed = next(
            s
            for s in range(200)
            if generate_program(s).family == "reduction"
        )
        minimized = minimize_choices(
            generate_program(seed).choices, _wants_reduction
        )
        assert _wants_reduction(minimized)
        for index, value in enumerate(minimized):
            if value == 0:
                continue
            lowered = (
                minimized[:index] + (value - 1,) + minimized[index + 1:]
            )
            lowered_norm = program_from_choices(lowered).choices
            assert lowered_norm == minimized or not _wants_reduction(
                lowered_norm
            )
