"""Differential oracles: clean on healthy seeds, loud on planted bugs."""

from repro.fuzz.driver import run_case
from repro.fuzz.gen import GeneratedProgram, generate_program
from repro.fuzz.oracles import (
    ORACLES,
    TECHNIQUES,
    binio_divergence,
    deptest_divergence,
    run_oracles,
    technique_for,
)


class TestOracleRotation:
    def test_technique_rotation_covers_all(self):
        seen = {technique_for(generate_program(s)) for s in range(6)}
        assert seen == set(TECHNIQUES)

    def test_technique_is_deterministic(self):
        program = generate_program(9)
        assert technique_for(program) == technique_for(program)


class TestOraclesClean:
    def test_healthy_seeds_have_no_divergences(self):
        for seed in range(4):
            case = run_case(seed)
            assert case.ok, case.divergences

    def test_every_family_passes_all_oracles(self):
        from repro.fuzz.gen import SHAPES

        for index, family in enumerate(SHAPES):
            program = generate_program(100 + index, family=family)
            program.seed = 100 + index
            divergences = run_oracles(program, oracles=ORACLES)
            assert not divergences, (family, [d.detail for d in divergences])


DEPTEST_DEMO = GeneratedProgram(
    name="deptest_demo",
    source="""
int a[32];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    a[i + 3] = a[i] + 1;
  }
  return a[12];
}
""",
    family="carried",
    choices=(),
    seed=0,
)


class TestDeptestOracle:
    def test_clean_on_generated_seeds(self):
        for seed in range(6):
            program = generate_program(seed)
            assert deptest_divergence(program) is None, (seed, program.family)

    def test_true_distance_validates(self):
        # The demo's store a[i+3] / load a[i] pair carries distance -3
        # (load at iteration j reads what the store wrote at j - 3);
        # the dynamic trace must agree, so the oracle stays silent.
        assert deptest_divergence(DEPTEST_DEMO) is None

    def test_catches_a_lying_independence_claim(self, monkeypatch):
        from repro.analysis import deptest as deptest_module

        def liar(self, a, b, scope="loop"):
            return deptest_module.DepVerdict(
                deptest_module.PROVEN_INDEPENDENT, reason="planted lie"
            )

        monkeypatch.setattr(
            deptest_module.DependenceTester, "test_pair", liar
        )
        divergence = deptest_divergence(DEPTEST_DEMO)
        assert divergence is not None
        assert divergence.oracle == "deptest"
        assert "touched address" in divergence.detail

    def test_catches_a_wrong_distance(self, monkeypatch):
        from repro.analysis import deptest as deptest_module

        real = deptest_module.DependenceTester.test_pair

        def skewed(self, a, b, scope="loop"):
            verdict = real(self, a, b, scope)
            if verdict.is_dependent and verdict.distance not in (None, 0):
                verdict.distance += 1  # off-by-one distance claim
            return verdict

        monkeypatch.setattr(
            deptest_module.DependenceTester, "test_pair", skewed
        )
        divergence = deptest_divergence(DEPTEST_DEMO)
        assert divergence is not None
        assert "conflicts at gap" in divergence.detail


class TestOraclesDetect:
    def test_binio_catches_mangled_round_trip(self, monkeypatch):
        """A printer that mangles the module header must be flagged.

        This is the planted version of the real bug this oracle found:
        the parser used to drop the printer's ``; module NAME`` header,
        so print -> parse -> print was not a fixpoint.
        """
        from repro.fuzz import oracles as oracles_module
        from repro.ir import print_module as real_print

        def lossy_print(module):
            text = real_print(module)
            return text.replace("; module ", "; module mangled_", 1)

        monkeypatch.setattr(oracles_module, "print_module", lossy_print)
        program = generate_program(3)
        program.seed = 3
        divergence = binio_divergence(program)
        assert divergence is not None
        assert divergence.oracle == "binio"

    def test_divergence_records_carry_provenance(self):
        program = generate_program(17)
        program.seed = 17
        # Healthy program: empty result still exercises the record path
        # via run_case, which attaches technique + source when present.
        case = run_case(17, oracles=("engine",))
        assert case.ok
        assert case.technique in TECHNIQUES
        assert case.family == program.family
