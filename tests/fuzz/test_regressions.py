"""Every minimized divergence the fuzzer ever found, kept fixed.

Each JSON file under ``regressions/`` is the fixture the campaign
driver emitted for a real, since-fixed bug: the minimized program
source, the oracle that flagged it, and the technique in play.  The
stored *source* is ground truth (generator evolution must not retire a
regression), so fixtures replay even if the decision-trace encoding
changes later.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz.gen import GeneratedProgram
from repro.fuzz.oracles import ORACLES, run_oracles

FIXTURES = sorted(
    (Path(__file__).parent / "regressions").glob("*.json")
)


def _load(path: Path) -> dict:
    payload = json.loads(path.read_text())
    assert payload["oracle"] in ORACLES, path
    return payload


@pytest.mark.parametrize(
    "fixture_path", FIXTURES, ids=[p.stem for p in FIXTURES]
)
def test_regression_stays_fixed(fixture_path):
    payload = _load(fixture_path)
    program = GeneratedProgram(
        name=payload["name"],
        source=payload["source"],
        family=payload["family"],
        choices=tuple(payload["choices"]),
        seed=payload["seed"],
    )
    divergences = run_oracles(
        program,
        oracles=(payload["oracle"],),
        technique=payload.get("technique"),
    )
    assert not divergences, [
        d.detail for d in divergences
    ]  # the bug in payload["detail"] has regressed


def test_fixture_directory_is_not_empty():
    """The suite must actually guard the historical bugs."""
    assert len(FIXTURES) >= 2
