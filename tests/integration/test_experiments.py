"""The evaluation's qualitative claims hold on workload subsets (the full
sweeps live in benchmarks/)."""

import pytest

from repro.experiments import (
    ALL_ABSTRACTIONS,
    USAGE_MATRIX,
    abstraction_usage_counts,
    fig3_dependences,
    fig4_invariants,
    fig5_speedups,
    governing_iv_counts,
    sec45_binary_size,
    table1,
    table2,
    table3,
    table4,
)
from repro.workloads import get


SUBSET = [get(n) for n in ("susan", "fluidanimate", "crc32", "x264", "lbm")]


class TestTables:
    def test_table1_every_abstraction_implemented(self):
        rows = table1()
        by_name = {r["abstraction"]: r for r in rows}
        for name in ("PDG", "aSCCDAG", "Loop builder (LB)", "Scheduler (SCD)"):
            assert by_name[name]["loc"] > 0
        assert by_name["TOTAL"]["loc"] > 1500

    def test_table2_tools_exist(self):
        rows = table2()
        assert all(r["loc"] > 0 for r in rows)

    def test_table3_loc_reduction_shape(self):
        rows = table3()
        by_tool = {r["tool"]: r for r in rows}
        # The paper's headline: 33.2%–99.2% reductions.  Our measured and
        # modeled reductions must all be positive, and the simple tools
        # (DEAD, LICM) must reduce much more than the complex port (PERS
        # in the paper).
        for row in rows:
            assert row["reduction_pct"] > 25.0, row
        assert by_tool["LICM"]["llvm_kind"] == "measured"
        assert by_tool["DEAD"]["reduction_pct"] > 85.0
        # Parallelizers built almost entirely from the layer.
        assert by_tool["HELIX"]["reduction_pct"] > 80.0

    def test_table4_every_abstraction_used_by_multiple_tools(self):
        counts = abstraction_usage_counts()
        for abstraction, count in counts.items():
            assert count >= 2, f"{abstraction} used by only {count} tool(s)"
        matrix = table4()
        assert len(matrix) == 10  # ten custom tools

    def test_table4_matches_actual_imports(self):
        """The declared usage matrix is consistent with the modules'
        actual imports from repro.core."""
        import os

        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        module_of_tool = {
            "HELIX": "xforms/helix.py",
            "DSWP": "xforms/dswp.py",
            "DOALL": "xforms/doall.py",
            "LICM": "xforms/licm.py",
            "DEAD": "xforms/dead.py",
            "TIME": "xforms/timesqueezer.py",
            "COOS": "xforms/coos.py",
            "PRVJ": "xforms/prvjeeves.py",
            "CARAT": "xforms/carat.py",
            "PERS": "xforms/perspective.py",
        }
        evidence = {
            # live_ins/live_outs are PDG queries (LoopDG internal/external
            # nodes); LoopBoundary is the shared wrapper around them.
            "PDG": ["pdg()", "dependence_graph", "pdg.", "live_ins",
                    "LoopBoundary"],
            "CG": ["call_graph", "callgraph"],
            "aSCCDAG": ["sccdag"],
            "DFE": ["dataflow", "DataFlow", "liveness"],
            "SCD": ["scheduler"],
            "LB": ["loop_builder", "loopbuilder", "clone_loop_into_task",
                   "LoopBuilder", "replace_loop_with_dispatch"],
            "ISL": ["islands"],
            "IV": ["governing_iv", "InductionVariable"],
            "IVS": ["chunk_cloned_loop", "IVStepper",
                    "InductionVariableStepper"],
            "INV": ["invariants", "is_invariant"],
            "FR": ["forest", "Forest"],
            "RD": ["reduction"],
            "ENV": ["environment", "build_environment"],
            "T": ["Task", "task"],
            "AR": ["architecture"],
            "PRO": ["profile", "Profiler", "hotness"],
            "LS": ["loop_info", "structure", "LoopStructure", "loops()"],
            "L": ["noelle.loops", "loop_of", "Loop", "natural_loop"],
        }
        for tool, declared in USAGE_MATRIX.items():
            path = os.path.join(root, module_of_tool[tool])
            with open(path) as handle:
                text = handle.read()
            # Direct dependencies leave textual evidence; shared helpers
            # (parallelizer_common) carry the rest.
            if "parallelizer_common" in text:
                with open(os.path.join(root, "xforms/parallelizer_common.py")) as h:
                    text += h.read()
            for abstraction, needles in evidence.items():
                if abstraction in declared:
                    assert any(n.lower() in text.lower() for n in needles), (
                        f"{tool} declares {abstraction} but shows no use"
                    )


class TestFigures:
    def test_fig3_noelle_disproves_more(self):
        rows = fig3_dependences(SUBSET)
        for row in rows:
            assert row["noelle_pct"] >= row["llvm_pct"]
        assert any(r["noelle_pct"] > r["llvm_pct"] + 10 for r in rows)

    def test_fig4_noelle_finds_more_invariants(self):
        rows = fig4_invariants(SUBSET)
        total_llvm = sum(r["llvm_invariants"] for r in rows)
        total_noelle = sum(r["noelle_invariants"] for r in rows)
        assert total_noelle > total_llvm

    def test_governing_ivs_shape(self):
        counts = governing_iv_counts(SUBSET)
        # NOELLE finds nearly all; LLVM a small minority — the 385-vs-11
        # shape of Section 4.3.
        assert counts["noelle_total"] >= 0.8 * counts["loops_total"]
        assert counts["llvm_total"] < 0.3 * counts["noelle_total"]


@pytest.mark.slow
class TestSpeedups:
    def test_fig5_subset(self):
        rows = fig5_speedups(
            [get("susan"), get("crc32")], num_cores=12,
            techniques=("gcc", "doall", "helix"),
        )
        by_name = {r["benchmark"]: r for r in rows}
        # gcc-style baseline: no benefit.
        for row in rows:
            assert row["gcc"] <= 1.05
            for technique in ("gcc", "doall", "helix"):
                assert row[f"{technique}_correct"], row
        # The DOALL-able image filter gains; crc32 stays flat (the paper's
        # callout).
        assert by_name["susan"]["doall"] > by_name["susan"]["gcc"]
        assert by_name["crc32"]["doall"] < 1.6


class TestBinarySize:
    def test_dead_reduces_sizes(self):
        rows = sec45_binary_size()
        average = sum(r["reduction_pct"] for r in rows) / len(rows)
        assert all(r["size_after"] <= r["size_before"] for r in rows)
        # The paper reports 6.3% average beyond -Oz; our library tail gives
        # every workload removable code, so the average must be clearly
        # positive.
        assert average > 3.0
