"""Property-based end-to-end test: randomly generated loop programs keep
their semantics through profiling, rm-lc-dependences, and each
parallelizing technique on the simulated machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.tools import remove_loop_carried_dependences
from repro.xforms import DOALL, HELIX
from tests.conftest import outputs_match


@st.composite
def loop_program(draw):
    """A random program: array init loop + a compute loop with optional
    reduction, conditional, and inner arithmetic."""
    size = draw(st.integers(min_value=8, max_value=64))
    mul_a = draw(st.integers(min_value=1, max_value=97))
    add_a = draw(st.integers(min_value=0, max_value=97))
    mod_a = draw(st.integers(min_value=2, max_value=101))
    use_condition = draw(st.booleans())
    use_reduction = draw(st.booleans())
    reduce_op = draw(st.sampled_from(["+", "^"]))
    body_lines = [f"int v = (data[i] * {mul_a} + i) % {mod_a};"]
    if use_condition:
        threshold = draw(st.integers(min_value=0, max_value=mod_a))
        body_lines.append(f"if (v > {threshold}) {{ v = v - 1; }}")
    if use_reduction:
        body_lines.append(f"acc = acc {reduce_op} v;")
        body_lines.append("out[i] = v;")
    else:
        body_lines.append("out[i] = v + i;")
    body = "\n    ".join(body_lines)
    return f"""
int data[{size}];
int out[{size}];
int main() {{
  int i;
  int acc = 0;
  for (i = 0; i < {size}; i = i + 1) {{
    data[i] = (i * 13 + {add_a}) % 251;
  }}
  for (i = 0; i < {size}; i = i + 1) {{
    {body}
  }}
  print_int(acc);
  print_int(out[{size // 2}]);
  return acc;
}}
"""


@settings(max_examples=25, deadline=None)
@given(loop_program(), st.sampled_from(["doall", "helix"]),
       st.integers(min_value=1, max_value=9))
def test_parallelization_preserves_semantics(source, technique, cores):
    baseline = Interpreter(compile_source(source)).run()
    assert baseline.trapped is None
    module = compile_source(source)
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    remove_loop_carried_dependences(noelle)
    if technique == "doall":
        DOALL(noelle, cores).run()
    else:
        HELIX(noelle, cores).run()
    machine = ParallelMachine(module, num_cores=cores)
    result = machine.run()
    assert result.trapped is None, result.trapped
    assert outputs_match(result.output, baseline.output), (
        f"{technique}@{cores} changed outputs: "
        f"{result.output} vs {baseline.output}"
    )
    assert result.return_value == baseline.return_value
