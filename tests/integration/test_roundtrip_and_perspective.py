"""Serializer round-trips on every workload, and Perspective's speedup."""

import pytest

from repro import ir
from repro.core import Noelle
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.workloads import all_workloads
from tests.conftest import outputs_match


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_print_parse_roundtrip_preserves_execution(workload):
    """Every workload's module serializes, reparses, verifies, and runs
    to the same output — the whole-IR pipeline's persistence guarantee."""
    module = workload.compile()
    reference = Interpreter(module, step_limit=workload.step_limit).run()
    text = ir.print_module(module)
    reparsed = ir.parse_module(text, workload.name)
    ir.verify_module(reparsed)
    result = Interpreter(reparsed, step_limit=workload.step_limit).run()
    assert result.output == reference.output
    assert result.return_value == reference.return_value
    # And the round trip is a fixpoint.
    assert ir.print_module(reparsed) == text


class TestPerspectiveSpeedup:
    SOURCE = """
int input_data[2500];
int output_data[2500];
void kernel(int *src, int *dst, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int v = src[i];
    dst[i] = (v * v + 3 * v + 7) % 211 + dst[i] % 2;
  }
}
int main() {
  int i;
  for (i = 0; i < 2500; i = i + 1) { input_data[i] = (i * 41 + 3) % 199; }
  kernel(input_data, output_data, 2500);
  print_int(output_data[123] + output_data[2400]);
  return 0;
}
"""

    def _weak_noelle(self, module):
        # Weak AA cannot separate the two pointer arguments, so the loop
        # has *apparent* (may) carried dependences: Perspective's habitat.
        from repro.analysis.aa import BasicAliasAnalysis

        noelle = Noelle(module)
        noelle._aa = BasicAliasAnalysis()
        return noelle

    def test_doall_rejects_but_perspective_speculates(self):
        from repro.xforms import DOALL, Perspective

        baseline = Interpreter(compile_source(self.SOURCE)).run()

        rejected = compile_source(self.SOURCE)
        weak = self._weak_noelle(rejected)
        doall = DOALL(weak)
        kernel_loops = [
            l for l in weak.loops()
            if l.structure.function.name == "kernel"
        ]
        assert kernel_loops and not doall.can_parallelize(kernel_loops[0])

        module = compile_source(self.SOURCE)
        noelle = self._weak_noelle(module)
        noelle.run_profiler()
        perspective = Perspective(noelle, default_cores=12)
        count = perspective.run()
        assert count >= 1, "Perspective found no speculative plan"
        machine = ParallelMachine(module, num_cores=12)
        result = machine.run()
        assert result.trapped is None
        assert outputs_match(result.output, baseline.output)
        assert result.guard_count > 0  # the validation actually ran
        speedup = baseline.cycles / result.cycles
        # Speculation pays validation per access but still wins clearly —
        # the paper's "minimal speculation cost" story.
        assert speedup > 2.0, f"only {speedup:.2f}x"
