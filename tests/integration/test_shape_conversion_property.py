"""Property-based tests of the loop-shape conversions.

Both LB conversions (while→do-while and do-while→while) must preserve the
observable behaviour of randomly generated counted loops, including the
degenerate trip counts the paper's micro-corpus exists to catch."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.analysis.loopinfo import LoopInfo
from repro.core.loopbuilder import LoopBuilder
from repro.frontend import compile_source
from repro.interp import Interpreter


@st.composite
def counted_while_program(draw):
    start = draw(st.integers(min_value=-3, max_value=5))
    bound = draw(st.integers(min_value=-3, max_value=20))
    step = draw(st.integers(min_value=1, max_value=4))
    mul = draw(st.integers(min_value=0, max_value=7))
    add = draw(st.integers(min_value=-5, max_value=5))
    shape = draw(st.sampled_from(["while", "do"]))
    body = f"s = s + i * {mul} + {add}; i = i + {step};"
    if shape == "while":
        loop = f"while (i < {bound}) {{ {body} }}"
    else:
        loop = f"do {{ {body} }} while (i < {bound});"
    return shape, f"""
int main() {{
  int i = {start};
  int s = 0;
  {loop}
  print_int(s);
  print_int(i);
  return s;
}}
"""


@settings(max_examples=60, deadline=None)
@given(counted_while_program())
def test_shape_conversions_preserve_behaviour(case):
    shape, source = case
    reference = Interpreter(compile_source(source)).run()
    module = compile_source(source)
    fn = module.get_function("main")
    loops = LoopInfo(fn).loops()
    if not loops:  # the frontend may have folded a zero-trip while away
        return
    builder = LoopBuilder(fn)
    if shape == "while":
        converted = builder.while_to_do_while(loops[0])
    else:
        converted = builder.do_while_to_while(loops[0])
    if converted is None:
        return  # legality declined: nothing must have changed
    ir.verify_function(fn)
    result = Interpreter(module).run()
    assert result.trapped is None
    assert result.output == reference.output
    assert result.return_value == reference.return_value


@settings(max_examples=30, deadline=None)
@given(counted_while_program())
def test_double_conversion_round_trip(case):
    """Converting one direction and then the other stays correct."""
    shape, source = case
    reference = Interpreter(compile_source(source)).run()
    module = compile_source(source)
    fn = module.get_function("main")
    loops = LoopInfo(fn).loops()
    if not loops:
        return
    builder = LoopBuilder(fn)
    first = (
        builder.while_to_do_while(loops[0])
        if shape == "while"
        else builder.do_while_to_while(loops[0])
    )
    if first is None:
        return
    loops = LoopInfo(fn).loops()
    if loops:
        if shape == "while":
            builder.do_while_to_while(loops[0])
        else:
            builder.while_to_do_while(loops[0])
    ir.verify_function(fn)
    result = Interpreter(module).run()
    assert result.output == reference.output
