"""Tests for the Section 2.4 testing infrastructure itself."""

import pytest

from repro.core import Noelle
from repro.frontend import compile_source
from repro.testing import (
    DEFAULT_CONFIGS,
    ToolConfig,
    build_corpus,
    generate_bash_script,
    run_corpus,
    run_micro_test,
)
from repro.testing import tests_with_pattern as corpus_with_pattern


class TestCorpus:
    def test_corpus_size_and_shape(self):
        corpus = build_corpus()
        assert len(corpus) >= 50  # "hundreds" scaled to our suite
        names = [t.name for t in corpus]
        assert len(names) == len(set(names)), "names must be unique"
        for test in corpus:
            assert test.patterns, test.name

    def test_pattern_lookup(self):
        reductions = corpus_with_pattern("reduction")
        assert len(reductions) >= 10
        do_whiles = corpus_with_pattern("shape:do_while")
        assert do_whiles
        assert all("shape:do_while" in t.patterns for t in do_whiles)

    def test_every_micro_test_compiles_and_runs(self):
        from repro.interp import Interpreter

        for test in build_corpus():
            module = compile_source(test.source, test.name)
            result = Interpreter(module).run()
            assert result.trapped is None, f"{test.name}: {result.trapped}"
            assert len(result.output) >= 1


class TestHarness:
    def test_plain_config_passes_everything(self):
        outcomes = run_corpus([ToolConfig("plain", [])])
        failures = [o for o in outcomes if not o.passed]
        assert not failures, failures[:3]

    @pytest.mark.parametrize("tool", ["licm", "dead", "carat"])
    def test_single_tool_configs_pass(self, tool):
        outcomes = run_corpus(
            [ToolConfig(tool, [tool])],
            tests=build_corpus()[::4],  # a deterministic sample
        )
        failures = [o for o in outcomes if not o.passed]
        assert not failures, failures[:3]

    @pytest.mark.parametrize("tool", ["doall", "helix"])
    def test_parallelizers_pass_reduction_tests(self, tool):
        outcomes = run_corpus(
            [ToolConfig(tool, [tool])],
            tests=corpus_with_pattern("reduction")[::3],
        )
        failures = [o for o in outcomes if not o.passed]
        assert not failures, failures[:3]

    def test_force_loop_id_is_surgical(self):
        source = """
int a[100];
int b[100];
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) { a[i] = i; }
  for (i = 0; i < 100; i = i + 1) { b[i] = i * 2; }
  print_int(a[9] + b[9]);
  return 0;
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        loops = noelle.loops()
        target_id = loops[1].structure.loop_id
        from repro.xforms import DOALL

        count = DOALL(noelle).run(only_loop_id=target_id)
        assert count == 1
        # Exactly one task function was created.
        tasks = [n for n in module.functions if ".doall.task" in n]
        assert len(tasks) == 1
        from repro.interp import Interpreter

        result = Interpreter(module).run()
        assert result.output == [9 + 18]

    def test_failure_reported_not_raised(self):
        from repro.testing.corpus import MicroTest

        broken = MicroTest("broken", "int main() { return *((int *)0); }",
                           {"trap"})
        outcome = run_micro_test(broken, ToolConfig("plain", []))
        # The reference itself traps; transformed also traps -> pass is
        # acceptable, but no exception may escape the harness.
        assert isinstance(outcome.passed, bool)


class TestBashGeneration:
    def test_script_contents(self):
        script = generate_bash_script(configs=DEFAULT_CONFIGS[:2])
        assert script.startswith("#!/bin/bash")
        assert "repro.testing" in script
        assert "--config plain" in script
        assert script.count("python -m repro.testing --test") == 2 * len(
            build_corpus()
        )

    def test_worker_module_runs(self):
        from repro.testing.__main__ import main

        assert main(["--test", "reduction_xor", "--config", "licm"]) == 0
        assert main(["--test", "nope", "--config", "plain"]) == 2
