"""Integration: every workload compiles, verifies, runs, and behaves the
same under each custom tool."""

import pytest

from repro import ir
from repro.core import Noelle
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.workloads import all_workloads, get, suite
from tests.conftest import outputs_match


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_workload_compiles_verifies_runs(workload):
    module = workload.compile()
    ir.verify_module(module)
    result = Interpreter(module, step_limit=workload.step_limit).run()
    assert result.trapped is None, result.trapped
    assert result.output, "every workload must print a checksum"


def test_suites_populated():
    assert len(suite("parsec")) >= 6
    assert len(suite("mibench")) >= 8
    assert len(suite("spec")) >= 7
    assert len(all_workloads()) >= 21


def test_registry_lookup():
    workload = get("crc32")
    assert workload.suite == "mibench"
    with pytest.raises(KeyError):
        get("not-a-benchmark")


@pytest.mark.parametrize(
    "workload",
    [w for w in all_workloads() if w.suite == "mibench"],
    ids=lambda w: w.name,
)
def test_licm_preserves_every_mibench_workload(workload):
    from repro.xforms import LICM

    baseline = Interpreter(workload.compile(), step_limit=workload.step_limit).run()
    module = workload.compile()
    LICM(Noelle(module)).run()
    ir.verify_module(module)
    result = Interpreter(module, step_limit=workload.step_limit).run()
    assert result.trapped is None
    assert outputs_match(result.output, baseline.output)


@pytest.mark.parametrize(
    "workload",
    [w for w in all_workloads() if w.suite == "spec"],
    ids=lambda w: w.name,
)
def test_dead_preserves_every_spec_workload(workload):
    from repro.xforms import DeadFunctionEliminator

    baseline = Interpreter(workload.compile(), step_limit=workload.step_limit).run()
    module = workload.compile()
    DeadFunctionEliminator(Noelle(module)).run()
    ir.verify_module(module)
    result = Interpreter(module, step_limit=workload.step_limit).run()
    assert outputs_match(result.output, baseline.output)


@pytest.mark.parametrize(
    "name", ["blackscholes", "susan", "canneal", "imagick"]
)
def test_carat_preserves_workloads(name):
    from repro.xforms import CARAT

    workload = get(name)
    baseline = Interpreter(workload.compile(), step_limit=workload.step_limit).run()
    module = workload.compile()
    CARAT(Noelle(module)).run()
    ir.verify_module(module)
    result = Interpreter(module, step_limit=workload.step_limit * 2).run()
    assert result.trapped is None
    assert outputs_match(result.output, baseline.output)


@pytest.mark.parametrize("name", ["bitcount", "x264", "fluidanimate"])
def test_coos_preserves_workloads(name):
    from repro.xforms import CompilerTiming

    workload = get(name)
    baseline = Interpreter(workload.compile(), step_limit=workload.step_limit).run()
    module = workload.compile()
    inserted = CompilerTiming(Noelle(module), budget_cycles=800).run()
    ir.verify_module(module)
    result = Interpreter(module, step_limit=workload.step_limit * 2).run()
    assert result.trapped is None
    assert outputs_match(result.output, baseline.output)
    assert inserted >= 1
    assert result.callback_count > 0


@pytest.mark.parametrize("name", ["crc32", "sha", "dijkstra", "qsort"])
def test_timesqueezer_preserves_workloads(name):
    from repro.xforms import TimeSqueezer

    workload = get(name)
    baseline = Interpreter(workload.compile(), step_limit=workload.step_limit).run()
    module = workload.compile()
    TimeSqueezer(Noelle(module)).run()
    ir.verify_module(module)
    result = Interpreter(module, step_limit=workload.step_limit * 2).run()
    assert result.trapped is None
    assert outputs_match(result.output, baseline.output)
