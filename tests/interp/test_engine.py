"""Execution-engine tests: compiled vs reference equivalence.

The compiled engine must be observationally identical to the reference
walker — same output, same return values, same trap messages, the same
step/cycle/weighted-cycle accounting at *every* budget boundary — and no
stale compiled code may survive a transform or a pass-manager rollback.
"""

import pytest

from repro import ir
from repro.core.noelle import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter, InterpError, StepLimitExceeded
from repro.interp.engine import engine_for, engine_mode, invalidate_module
from repro.perf import STATS
from repro.robust.passmanager import PassManager
from repro.runtime.machine import ParallelMachine
from repro.tools.rm_lc_dependences import remove_loop_carried_dependences
from repro.workloads import all_workloads, get
from repro.xforms.doall import DOALL

ENGINES = ("reference", "compiled")

#: A program exercising phis, calls, loads/stores, and float math — the
#: instruction mix whose accounting the two engines must agree on.
MIXED_SOURCE = """
int buf[8];

int helper(int x) {
  int s = 0;
  for (int i = 0; i < x; i = i + 1) {
    s = s + i;
    buf[i % 8] = s;
  }
  return s + buf[0];
}

int main() {
  int total = 0;
  for (int j = 0; j < 3; j = j + 1) {
    total = total + helper(j + 4);
  }
  print_int(total);
  return total;
}
"""


def _observables(module, engine, step_limit=50_000_000):
    """Everything the engines must agree on, as one comparable tuple."""
    interp = Interpreter(module, step_limit=step_limit, engine=engine)
    raised = None
    try:
        result = interp.run()
    except StepLimitExceeded as error:
        raised = f"StepLimitExceeded: {error}"
        result = interp.result
    except InterpError as error:
        raised = f"{type(error).__name__}: {error}"
        result = interp.result
    return (
        raised,
        result.output,
        result.return_value,
        result.trapped,
        result.steps,
        result.cycles,
        interp.weighted_cycles,
    )


class TestEngineSelection:
    def test_mode_resolution(self, monkeypatch):
        monkeypatch.delenv("NOELLE_ENGINE", raising=False)
        assert engine_mode() == "compiled"
        monkeypatch.setenv("NOELLE_ENGINE", "reference")
        assert engine_mode() == "reference"
        assert engine_mode("compiled") == "compiled"  # explicit wins
        monkeypatch.setenv("NOELLE_ENGINE", "jit")
        with pytest.raises(ValueError, match="jit"):
            engine_mode()

    def test_interpreter_honors_env(self, monkeypatch):
        module = compile_source("int main() { return 1; }")
        monkeypatch.setenv("NOELLE_ENGINE", "reference")
        assert Interpreter(module).engine is None
        monkeypatch.setenv("NOELLE_ENGINE", "compiled")
        assert Interpreter(module).engine is not None

    def test_custom_cost_model_forces_reference(self, monkeypatch):
        monkeypatch.setenv("NOELLE_ENGINE", "compiled")
        module = compile_source("int main() { return 1; }")
        assert Interpreter(module, cost_model={"add": 9}).engine is None

    def test_shared_engine_per_module(self):
        module = compile_source("int main() { return 1; }")
        assert engine_for(module) is engine_for(module)


class TestDifferentialWorkloads:
    """Satellite: every registered workload, byte-identical observables."""

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_workload_equivalence(self, workload):
        module = workload.compile()
        reference = _observables(module, "reference", workload.step_limit)
        compiled = _observables(module, "compiled", workload.step_limit)
        assert compiled == reference

    def test_repeat_run_is_deterministic(self):
        module = get("blackscholes").compile()
        first = _observables(module, "compiled")
        second = _observables(module, "compiled")  # warm cache
        assert second == first


class TestStepBudgetBoundary:
    """Satellite: block-granular charging must hit *exactly* the same
    StepLimitExceeded points as the per-instruction reference."""

    def test_every_budget_boundary(self):
        module = compile_source(MIXED_SOURCE, "boundary")
        raised, _, _, _, steps, _, _ = _observables(module, "reference")
        assert raised is None and steps > 50  # the sweep crosses segments
        for limit in range(1, steps + 3):
            reference = _observables(module, "reference", limit)
            compiled = _observables(module, "compiled", limit)
            assert compiled == reference, f"diverged at step_limit={limit}"

    def test_limit_exceeded_is_off_by_none(self):
        module = compile_source(MIXED_SOURCE, "boundary2")
        _, _, _, _, steps, _, _ = _observables(module, "reference")
        for engine in ENGINES:
            exact = _observables(module, engine, steps)
            assert exact[0] is None  # the exact budget completes
            over = _observables(module, engine, steps - 1)
            assert over[0] == f"StepLimitExceeded: exceeded {steps - 1} steps"
            assert over[4] == steps  # charged the step that crossed


class TestTrapEquivalence:
    TRAPS = {
        "oob_store": "int a[4];\nint main() { int i = 9; a[i] = 1; return 0; }",
        "oob_load": "int a[4];\nint main() { int i = 9; return a[i]; }",
        "use_after_free": """
int main() {
  int *p = (int *)malloc(4);
  free((char *)p);
  return p[0];
}
""",
        "null_deref": "int main() { int *p = (int *)0; return *p; }",
        "div_by_zero": "int main() { int z = 0; return 5 / z; }",
        "rem_by_zero": "int main() { int z = 0; return 5 % z; }",
    }

    @pytest.mark.parametrize("name", sorted(TRAPS))
    def test_trap_byte_identical(self, name):
        module = compile_source(self.TRAPS[name], name)
        assert _observables(module, "compiled") == _observables(
            module, "reference"
        )


class TestParallelMachineEquivalence:
    def test_doall_cycles_match(self):
        runs = {}
        for engine in ENGINES:
            module = get("blackscholes").compile()
            noelle = Noelle(module)
            noelle.attach_profile(Profiler(module).profile())
            remove_loop_carried_dependences(noelle)
            assert DOALL(noelle, 8).run(0.001) >= 1
            machine = ParallelMachine(module, num_cores=8, engine=engine)
            result = machine.run()
            runs[engine] = (
                result.output, result.return_value, result.cycles,
                result.steps, result.trapped,
            )
        assert runs["compiled"] == runs["reference"]

    def test_profiler_counts_match(self, monkeypatch):
        counts = {}
        for engine in ENGINES:
            monkeypatch.setenv("NOELLE_ENGINE", engine)
            module = compile_source(MIXED_SOURCE, "prof")
            profile = Profiler(module).profile()
            counts[engine] = {
                fn.name: profile.function_invocations(fn)
                for fn in module.defined_functions()
            }
        assert counts["compiled"] == counts["reference"]


class TestEngineCache:
    def test_compile_once_then_cache_hits(self):
        module = compile_source(MIXED_SOURCE, "cache")
        compiles0 = STATS.counters.get("engine.compiles", 0)
        Interpreter(module, engine="compiled").run()
        compiles1 = STATS.counters.get("engine.compiles", 0)
        assert compiles1 > compiles0  # cold: functions were compiled
        hits1 = STATS.counters.get("engine.cache_hits", 0)
        Interpreter(module, engine="compiled").run()
        assert STATS.counters.get("engine.compiles", 0) == compiles1
        assert STATS.counters.get("engine.cache_hits", 0) > hits1

    def test_per_function_invalidation_recompiles_one(self):
        module = compile_source(MIXED_SOURCE, "cache2")
        Interpreter(module, engine="compiled").run()
        before = STATS.counters.get("engine.compiles", 0)
        invalidate_module(module, module.functions["helper"])
        Interpreter(module, engine="compiled").run()
        assert STATS.counters.get("engine.compiles", 0) == before + 1

    def test_stats_report_engine_counters(self):
        module = compile_source("int main() { return 2; }", "stats")
        Interpreter(module, engine="compiled").run()
        for counter in ("engine.compiles", "engine.blocks_compiled"):
            assert STATS.counters.get(counter, 0) > 0
        Interpreter(module, engine="reference").run()
        assert STATS.counters.get("engine.blocks_reference", 0) > 0


class TestCacheCoherence:
    """No stale compiled code after transforms or rollbacks."""

    def test_transform_invalidates_compiled_code(self):
        module = compile_source(MIXED_SOURCE, "licm")
        noelle = Noelle(module)
        Interpreter(module, engine="compiled").run()  # warm the cache
        manager = PassManager(noelle, fault_plan=None)
        assert manager.run_registered("licm").ok
        # The transformed module's compiled execution must match its own
        # reference execution, not the pre-transform code.
        assert _observables(module, "compiled") == _observables(
            module, "reference"
        )

    def test_rollback_discards_compiled_code(self):
        module = compile_source(MIXED_SOURCE, "rollback")
        baseline = _observables(module, "compiled")
        manager = PassManager(Noelle(module), fault_plan=None)

        def bad_pass(noelle):
            fn = noelle.module.functions["helper"]
            block = fn.blocks[0]
            inst = ir.BinaryOp("add", ir.const_int(1), ir.const_int(2), "pad")
            inst.parent = block
            block.instructions.insert(len(block.instructions) - 1, inst)
            fn.assign_name(inst)
            invalidate_module(noelle.module, fn)
            # Cache the *mutated* body, then fail the transaction.
            Interpreter(noelle.module, engine="compiled").run()
            raise RuntimeError("injected failure after mutation")

        result = manager.run("bad-pass", bad_pass)
        assert result.rolled_back
        # Post-rollback, both engines must reproduce the pre-pass run.
        assert _observables(module, "compiled") == baseline
        assert _observables(module, "reference") == baseline
