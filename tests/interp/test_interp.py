"""Interpreter semantics tests."""

import pytest

from repro import ir
from repro.frontend import compile_source
from repro.interp import (
    Interpreter,
    MemoryTrap,
    StepLimitExceeded,
    run_module,
)
from tests.conftest import compile_and_run


class TestArithmeticSemantics:
    def test_division_semantics_match_c(self):
        assert compile_and_run("int main() { return 7 / 2; }").return_value == 3
        assert compile_and_run("int main() { return (0-7) / 2; }").return_value == -3
        assert compile_and_run("int main() { return (0-7) % 2; }").return_value == -1
        assert compile_and_run("int main() { return 7 % (0-2); }").return_value == 1

    def test_division_by_zero_is_error(self):
        module = compile_source("int main() { int z = 0; return 5 / z; }")
        with pytest.raises(Exception, match="division"):
            Interpreter(module).run()

    def test_integer_wrapping(self):
        # i64 overflow wraps (two's complement).
        result = compile_and_run(
            "int main() { int big = 9223372036854775807; return big + 1; }"
        )
        assert result.return_value == -(2**63)

    def test_shift_semantics(self):
        assert compile_and_run("int main() { return 3 << 4; }").return_value == 48
        assert compile_and_run("int main() { return (0-16) >> 2; }").return_value == -4

    def test_float_division_by_zero_is_inf(self):
        result = compile_and_run("double main() { double z = 0.0; return 1.0 / z; }")
        assert result.return_value == float("inf")


class TestMemorySemantics:
    def test_out_of_bounds_traps(self):
        result = compile_and_run(
            "int a[4];\nint main() { int i = 10; a[i] = 1; return 0; }"
        )
        assert result.trapped is not None

    def test_use_after_free_traps(self):
        result = compile_and_run(
            """
int main() {
  int *p = (int *)malloc(4);
  free((char *)p);
  return p[0];
}
"""
        )
        assert result.trapped is not None

    def test_double_free_traps(self):
        result = compile_and_run(
            """
int main() {
  char *p = malloc(4);
  free(p);
  free(p);
  return 0;
}
"""
        )
        assert result.trapped is not None

    def test_null_dereference_traps(self):
        module = compile_source("int main() { int *p = (int *)0; return *p; }")
        result = Interpreter(module).run()
        assert result.trapped is not None

    def test_guard_slot_between_allocations(self):
        # Writing one past an allocation must not corrupt the next one.
        result = compile_and_run(
            """
int main() {
  int a[2];
  int b[2];
  a[0] = 1; a[1] = 2; b[0] = 3; b[1] = 4;
  return a[0] + a[1] + b[0] + b[1];
}
"""
        )
        assert result.return_value == 10


class TestExecutionControls:
    def test_step_limit(self):
        module = compile_source(
            "int main() { int i = 0; while (1) { i = i + 1; } return i; }"
        )
        with pytest.raises(StepLimitExceeded):
            Interpreter(module, step_limit=1000).run()

    def test_exit_intrinsic(self):
        result = compile_and_run("int main() { exit(3); return 9; }")
        assert result.return_value == 3

    def test_cycle_accounting_monotonic(self):
        light = compile_and_run("int main() { return 1; }")
        heavy = compile_and_run(
            "int main() { int i; int s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i; } return s; }"
        )
        assert heavy.cycles > light.cycles > 0
        assert heavy.steps > light.steps

    def test_mul_costs_more_than_add(self):
        adds = compile_and_run(
            "int main() { int i; int s = 1; for (i = 0; i < 50; i = i + 1) { s = s + 3; } return s; }"
        )
        muls = compile_and_run(
            "int main() { int i; int s = 1; for (i = 0; i < 50; i = i + 1) { s = s * 3; } return s % 1000; }"
        )
        assert muls.cycles > adds.cycles


class TestDeterminism:
    def test_prng_reproducible(self):
        source = """
int main() {
  srand(7);
  int a = rand_lcg();
  srand(7);
  int b = rand_lcg();
  return a - b;
}
"""
        assert compile_and_run(source).return_value == 0

    def test_generators_differ(self):
        source = """
int main() {
  srand(7);
  int a = rand_lcg();
  srand(7);
  int b = rand_xorshift();
  return a == b;
}
"""
        assert compile_and_run(source).return_value == 0

    def test_whole_runs_identical(self):
        source = """
int main() {
  int i; int s = 0;
  srand(99);
  for (i = 0; i < 20; i = i + 1) { s = s + rand_pcg() % 100; }
  print_int(s);
  return s;
}
"""
        a = compile_and_run(source)
        b = compile_and_run(source)
        assert a.output == b.output
        assert a.cycles == b.cycles


class TestIndirectCalls:
    def test_function_pointer_dispatch(self):
        result = compile_and_run(
            """
int sel = 2;
int add1(int x) { return x + 1; }
int mul2(int x) { return x * 2; }
int main() {
  int (*f)(int);
  if (sel == 1) { f = add1; } else { f = mul2; }
  return f(21);
}
"""
        )
        assert result.return_value == 42

    def test_call_through_table(self):
        result = compile_and_run(
            """
int a() { return 10; }
int b() { return 20; }
int (*chosen)(void) = b;
int main() {
  int (*f)(void);
  f = chosen;
  return f();
}
"""
        )
        assert result.return_value == 20


class TestIntrinsics:
    def test_math(self):
        result = compile_and_run(
            "double main() { return sqrt(16.0) + fabs(0.0 - 2.0) + floor(3.7); }"
        )
        assert result.return_value == pytest.approx(9.0)

    def test_pow_exp_log(self):
        result = compile_and_run(
            "double main() { return pow(2.0, 10.0) + log(exp(1.0)); }"
        )
        assert result.return_value == pytest.approx(1025.0)

    def test_clock_set_changes_weighted_time(self):
        module = compile_source(
            """
int main() {
  int i; int s = 0;
  clock_set(5);
  for (i = 0; i < 100; i = i + 1) { s = s + i; }
  return s;
}
"""
        )
        fast = Interpreter(module)
        fast.run()
        module2 = compile_source(
            """
int main() {
  int i; int s = 0;
  for (i = 0; i < 100; i = i + 1) { s = s + i; }
  return s;
}
"""
        )
        slow = Interpreter(module2)  # default clock period 10
        slow.run()
        assert fast.weighted_cycles < slow.weighted_cycles
