"""Binary IR (.nir) round-trip and robustness tests."""

import os

import pytest

from repro import ir
from repro.ir import binio
from repro.ir.binio import (
    BinFormatError,
    BinTruncatedError,
    BinVersionError,
    is_binary_ir,
    read_module,
    write_module,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _roundtrip(module):
    data = write_module(module)
    clone = read_module(data)
    assert ir.print_module(clone) == ir.print_module(module)
    return clone


def test_roundtrip_counted_loop():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    clone = _roundtrip(module)
    ir.verify_module(clone)


def test_roundtrip_all_workloads_byte_identical():
    from repro.workloads import registry

    for workload in registry.all_workloads():
        module = workload.compile()
        data = write_module(module)
        clone = read_module(data)
        assert ir.print_module(clone) == ir.print_module(module), (
            workload.name
        )
        # a second encode of the decoded module is byte-stable
        assert write_module(clone) == data, workload.name


def test_roundtrip_preserves_naming_state():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    clone = _roundtrip(module)
    fn = module.functions["sum"]
    fn2 = clone.functions["sum"]
    assert fn2._used_names == fn._used_names
    assert fn2._name_counter == fn._name_counter
    # fresh names allocate identically after a round trip
    block = fn.blocks[0]
    block2 = fn2.blocks[0]
    builder = ir.IRBuilder(block)
    builder2 = ir.IRBuilder(block2)
    a = builder.add(ir.const_int(1), ir.const_int(2))
    b = builder2.add(ir.const_int(1), ir.const_int(2))
    assert a.name == b.name


def test_roundtrip_post_helix_pipeline():
    """Transformed modules (parallel-construct metadata, added
    functions/globals) survive the binary format bit-for-bit."""
    from repro.tools.pipeline import helix_pipeline
    from repro.workloads import get

    module = helix_pipeline([get("blackscholes").source])
    clone = _roundtrip(module)
    for name, fn in module.functions.items():
        assert clone.functions[name].metadata == fn.metadata
        assert clone.functions[name].attributes == fn.attributes
    insts = [i for f in module.defined_functions() for i in f.instructions()]
    insts2 = [i for f in clone.defined_functions() for i in f.instructions()]
    assert len(insts) == len(insts2)
    for inst, inst2 in zip(insts, insts2):
        assert inst.metadata == inst2.metadata


def test_roundtrip_interp_identical():
    from repro.interp.interp import Interpreter
    from repro.workloads import get

    module = get("crc32").compile()
    clone = _roundtrip(module)
    a = Interpreter(module).run()
    b = Interpreter(clone).run()
    assert a.output == b.output
    assert a.steps == b.steps
    assert a.cycles == b.cycles


def test_is_binary_ir_sniffs_magic():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    data = write_module(module)
    assert is_binary_ir(data)
    assert not is_binary_ir(ir.print_module(module).encode())
    assert not is_binary_ir(b"")
    assert not is_binary_ir(b"\x7fN")


def test_golden_fixture_still_decodes():
    """The checked-in .nir fixture from the version-1 writer decodes to
    the checked-in textual IR — guards accidental format drift."""
    with open(os.path.join(GOLDEN_DIR, "count_loop.nir"), "rb") as handle:
        data = handle.read()
    with open(os.path.join(GOLDEN_DIR, "count_loop.ir")) as handle:
        text = handle.read()
    module = read_module(data)
    assert ir.print_module(module) == text


def test_wrong_magic_raises_version_error():
    with pytest.raises(BinVersionError):
        read_module(b"NOPE" + b"\x00" * 32)


def test_future_version_raises_version_error():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    data = bytearray(write_module(module))
    assert data[4] == binio.FORMAT_VERSION
    data[4] = 0x7F  # a future format version
    with pytest.raises(BinVersionError):
        read_module(bytes(data))


def test_truncated_raises_structured_error():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    data = write_module(module)
    for cut in (5, len(data) // 3, len(data) // 2, len(data) - 1):
        with pytest.raises(BinFormatError):
            read_module(data[:cut])
    with pytest.raises(BinTruncatedError):
        read_module(data[: len(data) - 1])


def test_corrupted_body_raises_structured_error():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    data = write_module(module)
    corrupted = 0
    for pos in range(8, len(data), 7):
        mutated = bytearray(data)
        mutated[pos] ^= 0xFF
        try:
            clone = read_module(bytes(mutated))
            # Decoding may still succeed (e.g. a flipped name byte);
            # the result must at least be a Module.
            assert isinstance(clone, ir.Module)
        except BinFormatError:
            corrupted += 1
    # most single-byte flips must surface as structured errors,
    # never as stray KeyError/IndexError/etc.
    assert corrupted > 0


def test_trailing_garbage_rejected():
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    data = write_module(module)
    with pytest.raises(BinFormatError):
        read_module(data + b"\x00")


def test_write_read_module_file(tmp_path):
    from tests.conftest import build_count_loop

    module, _fn, _values = build_count_loop()
    path = tmp_path / ("m" + binio.EXTENSION)
    binio.write_module_file(module, str(path))
    clone = binio.read_module_file(str(path))
    assert ir.print_module(clone) == ir.print_module(module)
