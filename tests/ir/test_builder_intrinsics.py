"""IRBuilder positioning/insertion and intrinsics-surface tests."""

import pytest

from repro import ir
from repro.ir.intrinsics import (
    ALLOCATOR_INTRINSICS,
    INTRINSICS,
    PRVG_INTRINSICS,
    PURE_INTRINSICS,
    declare_intrinsic,
    is_intrinsic,
)


class TestBuilderPositioning:
    def setup_method(self):
        self.module = ir.Module("b")
        self.fn = self.module.add_function("f", ir.FunctionType(ir.I64, []))
        self.builder, self.entry = ir.build_function(self.fn)

    def test_position_before_inserts_in_order(self):
        a = self.builder.add(ir.const_int(1), ir.const_int(2), "a")
        c = self.builder.add(ir.const_int(5), ir.const_int(6), "c")
        self.builder.position_before(c)
        b = self.builder.add(a, ir.const_int(1), "b")
        names = [i.name for i in self.entry.instructions]
        assert names.index("a") < names.index("b") < names.index("c")

    def test_position_at_end_after_position_before(self):
        a = self.builder.add(ir.const_int(1), ir.const_int(2), "a")
        self.builder.position_before(a)
        self.builder.position_at_end(self.entry)
        b = self.builder.add(a, ir.const_int(3), "b")
        assert self.entry.instructions[-1] is b

    def test_phi_always_inserted_at_top(self):
        other = self.fn.add_block("other")
        self.builder.br(other)
        self.builder.position_at_end(other)
        inst = self.builder.add(ir.const_int(1), ir.const_int(2), "x")
        phi = self.builder.phi(ir.I64, "p")
        assert other.instructions[0] is phi
        assert other.instructions[1] is inst

    def test_all_binary_helpers(self):
        one, two = ir.const_int(1), ir.const_int(2)
        for helper in ("add", "sub", "mul", "sdiv", "srem", "and_", "or_",
                       "xor", "shl", "ashr"):
            inst = getattr(self.builder, helper)(one, two)
            assert isinstance(inst, ir.BinaryOp)
        f1, f2 = ir.const_float(1.0), ir.const_float(2.0)
        for helper in ("fadd", "fsub", "fmul", "fdiv"):
            inst = getattr(self.builder, helper)(f1, f2)
            assert isinstance(inst, ir.BinaryOp)

    def test_insert_without_position_fails(self):
        detached = ir.IRBuilder()
        with pytest.raises(AssertionError):
            detached.add(ir.const_int(1), ir.const_int(2))


class TestIntrinsics:
    def test_family_classification(self):
        assert "sqrt" in PURE_INTRINSICS
        assert "malloc" in ALLOCATOR_INTRINSICS
        assert "rand_lcg" in PRVG_INTRINSICS
        assert "print_int" not in PURE_INTRINSICS

    def test_declare_sets_attributes(self):
        module = ir.Module("m")
        fn = declare_intrinsic(module, "sqrt")
        assert "pure" in fn.attributes
        assert is_intrinsic(fn)

    def test_declare_idempotent(self):
        module = ir.Module("m")
        a = declare_intrinsic(module, "malloc")
        b = declare_intrinsic(module, "malloc")
        assert a is b

    def test_unknown_intrinsic_rejected(self):
        module = ir.Module("m")
        with pytest.raises(KeyError):
            declare_intrinsic(module, "mystery_function")

    def test_every_intrinsic_has_interpreter_support(self):
        """Every declared intrinsic must be callable without raising
        'unknown external' (the classic drift bug between the table and
        the interpreter)."""
        from repro.interp.interp import INTRINSIC_COSTS

        for name in INTRINSICS:
            assert name in INTRINSIC_COSTS or name in (
                "rand", "srand", "exit",
            ) or INTRINSIC_COSTS.get(name, None) is not None

    def test_user_defined_function_not_intrinsic(self):
        module = ir.Module("m")
        fn = module.add_function("mine", ir.FunctionType(ir.VOID, []))
        fn.add_block("entry").append(ir.Ret())
        assert not is_intrinsic(fn)


class TestWorkloadRegistry:
    def test_duplicate_registration_rejected(self):
        from repro.workloads import all_workloads
        from repro.workloads.registry import Workload, register

        all_workloads()  # force the suites to load first
        with pytest.raises(ValueError):
            register(Workload("crc32", "mibench", "int main(){return 0;}",
                              "dup", False))

    def test_compile_returns_fresh_modules(self):
        from repro.workloads import get

        workload = get("bitcount")
        a = workload.compile()
        b = workload.compile()
        assert a is not b
        assert a.get_function("main") is not b.get_function("main")
