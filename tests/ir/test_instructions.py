"""Unit tests for every instruction kind."""

import pytest

from repro import ir
from repro.ir import (
    DOUBLE,
    I1,
    I8,
    I64,
    Alloca,
    ArrayType,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    ConstantInt,
    ElemPtr,
    FCmp,
    FunctionType,
    ICmp,
    Load,
    Module,
    Phi,
    PointerType,
    Ret,
    Select,
    Store,
    StructType,
    Switch,
    Unreachable,
    const_bool,
    const_float,
    const_int,
)


class TestBinaryOp:
    def test_result_type_follows_operands(self):
        add = BinaryOp("add", const_int(1), const_int(2))
        assert add.type == I64

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            BinaryOp("frobnicate", const_int(1), const_int(2))

    def test_commutativity(self):
        assert BinaryOp("add", const_int(1), const_int(2)).is_commutative()
        assert BinaryOp("fmul", const_float(1), const_float(2)).is_commutative()
        assert not BinaryOp("sub", const_int(1), const_int(2)).is_commutative()
        assert not BinaryOp("shl", const_int(1), const_int(2)).is_commutative()

    def test_no_memory_effects(self):
        add = BinaryOp("add", const_int(1), const_int(2))
        assert not add.may_read_memory()
        assert not add.may_write_memory()
        assert not add.has_side_effects()


class TestCompares:
    def test_icmp_result_is_i1(self):
        assert ICmp("slt", const_int(1), const_int(2)).type == I1

    def test_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt", const_int(1), const_int(2))
        with pytest.raises(ValueError):
            FCmp("slt", const_float(1), const_float(2))

    def test_swap_operands_preserves_semantics(self):
        a, b = const_int(1), const_int(2)
        cmp = ICmp("slt", a, b)
        cmp.swap_operands()
        assert cmp.predicate == "sgt"
        assert cmp.lhs is b and cmp.rhs is a

    def test_swap_symmetric_predicates(self):
        cmp = ICmp("eq", const_int(1), const_int(2))
        cmp.swap_operands()
        assert cmp.predicate == "eq"

    def test_fcmp_swap(self):
        cmp = FCmp("ole", const_float(1), const_float(2))
        cmp.swap_operands()
        assert cmp.predicate == "oge"


class TestMemoryInstructions:
    def test_alloca_type(self):
        alloca = Alloca(ArrayType(I64, 4))
        assert alloca.type == PointerType(ArrayType(I64, 4))

    def test_load_type_checks(self):
        alloca = Alloca(I64)
        load = Load(alloca)
        assert load.type == I64
        assert load.may_read_memory()
        with pytest.raises(TypeError):
            Load(const_int(5))

    def test_store_requires_pointer(self):
        alloca = Alloca(I64)
        store = Store(const_int(1), alloca)
        assert store.may_write_memory()
        assert store.has_side_effects()
        with pytest.raises(TypeError):
            Store(const_int(1), const_int(2))


class TestElemPtr:
    def test_array_walk(self):
        alloca = Alloca(ArrayType(I64, 10))
        ep = ElemPtr(alloca, [const_int(0), const_int(3)])
        assert ep.type == PointerType(I64)

    def test_struct_walk(self):
        st = StructType("pair", [I64, DOUBLE])
        alloca = Alloca(st)
        ep = ElemPtr(alloca, [const_int(0), const_int(1)])
        assert ep.type == PointerType(DOUBLE)

    def test_struct_index_must_be_constant(self):
        st = StructType("pair2", [I64, DOUBLE])
        alloca = Alloca(st)
        dynamic = BinaryOp("add", const_int(0), const_int(1))
        with pytest.raises(TypeError):
            ElemPtr(alloca, [const_int(0), dynamic])

    def test_first_index_only_scales(self):
        alloca = Alloca(I64)
        ep = ElemPtr(alloca, [const_int(5)])
        assert ep.type == PointerType(I64)

    def test_requires_index(self):
        with pytest.raises(ValueError):
            ElemPtr(Alloca(I64), [])

    def test_all_zero_indices(self):
        alloca = Alloca(ArrayType(I64, 2))
        assert ElemPtr(alloca, [const_int(0), const_int(0)]).has_all_zero_indices()
        assert not ElemPtr(alloca, [const_int(0), const_int(1)]).has_all_zero_indices()

    def test_cannot_index_scalar(self):
        alloca = Alloca(I64)
        with pytest.raises(TypeError):
            ElemPtr(alloca, [const_int(0), const_int(0)])


class TestCall:
    def _fn(self, module=None):
        module = module or Module("m")
        return module.add_function("callee", FunctionType(I64, [I64]))

    def test_direct_call(self):
        fn = self._fn()
        call = Call(fn, [const_int(1)])
        assert not call.is_indirect()
        assert call.called_function() is fn
        assert call.type == I64

    def test_arity_check(self):
        fn = self._fn()
        with pytest.raises(TypeError):
            Call(fn, [])

    def test_vararg_call(self):
        module = Module("m")
        fn = module.add_function("v", FunctionType(ir.VOID, [], vararg=True))
        Call(fn, [const_int(1), const_int(2)])  # no arity error

    def test_indirect_call(self):
        fn = self._fn()
        load_slot = Alloca(PointerType(fn.function_type))
        loaded = Load(load_slot)
        call = Call(loaded, [const_int(3)])
        assert call.is_indirect()
        assert call.called_function() is None

    def test_call_is_conservative_about_memory(self):
        fn = self._fn()
        call = Call(fn, [const_int(1)])
        assert call.may_read_memory() and call.may_write_memory()

    def test_non_function_callee(self):
        with pytest.raises(TypeError):
            Call(const_int(5), [])


class TestPhi:
    def test_incoming_management(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, []))
        b1 = fn.add_block("b1")
        b2 = fn.add_block("b2")
        phi = Phi(I64)
        phi.add_incoming(const_int(1), b1)
        phi.add_incoming(const_int(2), b2)
        assert len(list(phi.incoming())) == 2
        assert phi.incoming_value_for(b1).value == 1
        phi.remove_incoming(b1)
        assert len(list(phi.incoming())) == 1
        with pytest.raises(KeyError):
            phi.incoming_value_for(b1)

    def test_set_incoming_value(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, []))
        b1 = fn.add_block("b1")
        phi = Phi(I64)
        phi.add_incoming(const_int(1), b1)
        phi.set_incoming_value_for(b1, const_int(9))
        assert phi.incoming_value_for(b1).value == 9


class TestTerminators:
    def _blocks(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(ir.VOID, []))
        return fn.add_block("a"), fn.add_block("b"), fn.add_block("c")

    def test_branch_successors(self):
        a, b, _ = self._blocks()
        br = Branch(b)
        assert br.successors() == [b]
        assert br.is_terminator()

    def test_cond_branch(self):
        a, b, c = self._blocks()
        br = CondBranch(const_bool(True), b, c)
        assert br.successors() == [b, c]

    def test_replace_successor(self):
        a, b, c = self._blocks()
        br = CondBranch(const_bool(True), b, b)
        br.replace_successor(b, c)
        assert br.true_block is c and br.false_block is c

    def test_switch(self):
        a, b, c = self._blocks()
        sw = Switch(const_int(1), a, [(ConstantInt(I64, 1), b), (ConstantInt(I64, 2), c)])
        assert sw.default is a
        assert len(list(sw.cases())) == 2
        assert set(id(s) for s in sw.successors()) == {id(a), id(b), id(c)}

    def test_ret(self):
        assert Ret().value is None
        assert Ret(const_int(1)).value.value == 1

    def test_unreachable(self):
        assert Unreachable().successors() == []


class TestCastsAndSelect:
    def test_cast_kinds(self):
        value = const_int(5)
        assert Cast("trunc", value, I8).type == I8
        assert Cast("sitofp", value, DOUBLE).type == DOUBLE
        with pytest.raises(ValueError):
            Cast("reinterpret", value, I8)

    def test_select(self):
        sel = Select(const_bool(True), const_int(1), const_int(2))
        assert sel.type == I64


class TestStructuralEdits:
    def test_erase_from_parent(self, count_loop):
        _, fn, v = count_loop
        inst = v["acc_next"]
        block = inst.parent
        # Remove the consumer of acc_next first to keep uses clean.
        inst.replace_all_uses_with(const_int(0))
        inst.erase_from_parent()
        assert inst not in block.instructions
        assert inst.parent is None

    def test_move_before(self, count_loop):
        _, fn, v = count_loop
        i_next, acc_next = v["i_next"], v["acc_next"]
        i_next.move_before(acc_next)
        body = v["body"]
        assert body.instructions.index(i_next) < body.instructions.index(acc_next)

    def test_move_to_end_respects_terminator(self, count_loop):
        _, fn, v = count_loop
        acc_next = v["acc_next"]
        acc_next.move_to_end(v["body"])
        assert v["body"].instructions[-2] is acc_next
        assert v["body"].terminator is v["body"].instructions[-1]
