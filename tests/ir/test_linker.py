"""Tests for the module linker (noelle-whole-IR's substrate)."""

import pytest

from repro import ir
from repro.frontend import compile_source
from repro.interp import run_module
from repro.ir import LinkError, link_modules


def test_definition_resolves_declaration():
    a = compile_source("int helper(int x); int main() { return helper(4); }", "a")
    b = compile_source("int helper(int x) { return x * 2; }", "b")
    linked = link_modules([a, b])
    ir.verify_module(linked)
    assert run_module(linked).return_value == 8


def test_declaration_after_definition():
    a = compile_source("int helper(int x) { return x + 1; }", "a")
    b = compile_source("int helper(int x); int main() { return helper(1); }", "b")
    linked = link_modules([a, b])
    assert run_module(linked).return_value == 2


def test_tentative_globals_merge():
    a = compile_source("int shared[4]; int main() { return shared[2]; }", "a")
    b = compile_source(
        "int shared[4];\nvoid unused() { shared[2] = 9; }", "b"
    )
    linked = link_modules([a, b])
    ir.verify_module(linked)
    # Both TUs reference the same storage now.
    result = run_module(linked)
    assert result.return_value == 0


def test_global_definition_wins_over_tentative():
    a = compile_source("int g; int main() { return g; }", "a")
    b = compile_source("int g = 41;\nint touch() { return g; }", "b")
    linked = link_modules([a, b])
    assert run_module(linked).return_value == 41


def test_duplicate_function_definitions_rejected():
    a = compile_source("int f() { return 1; }", "a")
    b = compile_source("int f() { return 2; }", "b")
    with pytest.raises(LinkError):
        link_modules([a, b])


def test_conflicting_function_types_rejected():
    a = compile_source("int f(int x); int main() { return f(1); }", "a")
    b = compile_source("double f(double x) { return x; }", "b")
    with pytest.raises(LinkError):
        link_modules([a, b])


def test_duplicate_global_definitions_rejected():
    a = compile_source("int g = 1;", "a")
    b = compile_source("int g = 2;", "b")
    with pytest.raises(LinkError):
        link_modules([a, b])


def test_metadata_merges_latest_wins():
    a = compile_source("int main() { return 0; }", "a")
    b = compile_source("int aux() { return 0; }", "b")
    a.metadata["k"] = 1
    b.metadata["k"] = 2
    linked = link_modules([a, b])
    assert linked.metadata["k"] == 2


def test_nothing_to_link():
    with pytest.raises(LinkError):
        link_modules([])


def test_cross_module_globals_and_calls_execute():
    main_src = """
int table[8];
void fill();
int main() {
  fill();
  return table[3];
}
"""
    lib_src = """
int table[8];
void fill() {
  int i;
  for (i = 0; i < 8; i = i + 1) { table[i] = i * i; }
}
"""
    linked = link_modules([compile_source(main_src, "m"), compile_source(lib_src, "l")])
    ir.verify_module(linked)
    assert run_module(linked).return_value == 9
