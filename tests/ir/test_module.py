"""Unit tests for modules, functions, and basic blocks."""

import pytest

from repro import ir
from repro.ir import (
    I64,
    VOID,
    Branch,
    FunctionType,
    Module,
    Ret,
    const_int,
)


class TestModule:
    def test_add_and_get_function(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, [I64]), ["x"])
        assert module.get_function("f") is fn
        with pytest.raises(KeyError):
            module.get_function("nope")

    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function("f", FunctionType(VOID, []))
        with pytest.raises(ValueError):
            module.add_function("f", FunctionType(VOID, []))

    def test_declare_function_idempotent(self):
        module = Module("m")
        a = module.declare_function("ext", FunctionType(I64, [I64]))
        b = module.declare_function("ext", FunctionType(I64, [I64]))
        assert a is b

    def test_declare_conflicting_type(self):
        module = Module("m")
        module.declare_function("ext", FunctionType(I64, [I64]))
        with pytest.raises(TypeError):
            module.declare_function("ext", FunctionType(VOID, []))

    def test_globals(self):
        module = Module("m")
        gv = module.add_global("g", I64, const_int(1))
        assert module.get_global("g") is gv
        with pytest.raises(ValueError):
            module.add_global("g", I64)
        with pytest.raises(KeyError):
            module.get_global("h")

    def test_structs(self):
        module = Module("m")
        st = module.add_struct("point", [I64, I64])
        assert module.structs["point"] is st
        with pytest.raises(ValueError):
            module.add_struct("point")

    def test_remove_function(self, count_loop):
        module, fn, _ = count_loop
        module.remove_function("sum")
        assert "sum" not in module.functions

    def test_num_instructions(self, count_loop):
        module, fn, _ = count_loop
        assert module.num_instructions() == fn.num_instructions() > 0

    def test_defined_functions_skips_declarations(self):
        module = Module("m")
        module.declare_function("ext", FunctionType(VOID, []))
        fn = module.add_function("f", FunctionType(VOID, []))
        block = fn.add_block("entry")
        block.append(Ret())
        assert [f.name for f in module.defined_functions()] == ["f"]


class TestFunction:
    def test_arguments(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, [I64, I64]), ["a", "b"])
        assert [a.name for a in fn.args] == ["a", "b"]
        assert fn.args[0].index == 0
        assert fn.args[1].parent is fn

    def test_declaration_vs_definition(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(VOID, []))
        assert fn.is_declaration()
        fn.add_block("entry")
        assert not fn.is_declaration()

    def test_entry_requires_body(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(VOID, []))
        with pytest.raises(ValueError):
            fn.entry

    def test_unique_block_names(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(VOID, []))
        b1 = fn.add_block("bb")
        b2 = fn.add_block("bb")
        assert b1.name != b2.name

    def test_unique_instruction_names(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, []))
        builder, _ = ir.build_function(fn)
        a = builder.add(const_int(1), const_int(2), "x")
        b = builder.add(const_int(3), const_int(4), "x")
        assert a.name != b.name

    def test_argument_names_reserved(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, [I64]), ["x"])
        builder, _ = ir.build_function(fn)
        inst = builder.add(fn.args[0], const_int(1), "x")
        assert inst.name != "x"

    def test_insert_block_after(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(VOID, []))
        a = fn.add_block("a")
        c = fn.add_block("c")
        b = fn.insert_block_after(a, "b")
        assert [blk.name for blk in fn.blocks] == ["a", "b", "c"]


class TestBasicBlock:
    def test_terminator_detection(self, count_loop):
        _, fn, v = count_loop
        assert v["header"].terminator is not None
        assert v["header"].terminator.opcode == "cond_br"

    def test_successors_predecessors(self, count_loop):
        _, fn, v = count_loop
        header, body, exit_block = v["header"], v["body"], v["exit"]
        assert set(id(s) for s in header.successors()) == {id(body), id(exit_block)}
        preds = header.predecessors()
        assert {p.name for p in preds} == {"entry", "body"}
        assert body.predecessors() == [header]

    def test_phis_iteration_stops_at_non_phi(self, count_loop):
        _, fn, v = count_loop
        header = v["header"]
        phis = list(header.phis())
        assert len(phis) == 2
        assert header.first_non_phi() is v["cmp"]

    def test_erase_block(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(VOID, []))
        a = fn.add_block("a")
        b = fn.add_block("b")
        a.append(Branch(b))
        b.append(Ret())
        # Erase b after redirecting a.
        a.terminator.erase_from_parent()
        a.append(Ret())
        b.erase()
        assert b not in fn.blocks
