"""Round-trip tests for the textual IR printer and parser."""

import pytest

from repro import ir
from repro.ir import ParseError, parse_module, print_module, verify_module
from tests.conftest import build_count_loop


def roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text, module.name)
    verify_module(reparsed)
    assert print_module(reparsed) == text
    return reparsed


class TestRoundTrip:
    def test_count_loop(self):
        module, _, _ = build_count_loop()
        roundtrip(module)

    def test_globals_and_structs(self):
        module = ir.Module("g")
        module.add_struct("pair", [ir.I64, ir.DOUBLE])
        module.add_global("scalar", ir.I64, ir.const_int(42))
        module.add_global("fscalar", ir.DOUBLE, ir.const_float(2.5))
        module.add_global("arr", ir.ArrayType(ir.I64, 3))
        module.add_global("konst", ir.I64, ir.const_int(7), constant=True)
        roundtrip(module)

    def test_struct_field_access(self):
        module = ir.Module("s")
        st = module.add_struct("point", [ir.I64, ir.I64])
        fn = module.add_function("f", ir.FunctionType(ir.I64, []))
        builder, _ = ir.build_function(fn)
        slot = builder.alloca(st, "p")
        field = builder.elem_ptr(slot, [ir.const_int(0), ir.const_int(1)], "y")
        builder.store(ir.const_int(3), field)
        loaded = builder.load(field, "v")
        builder.ret(loaded)
        verify_module(module)
        roundtrip(module)

    def test_function_pointers(self):
        module = ir.Module("fp")
        callee = module.add_function("callee", ir.FunctionType(ir.I64, [ir.I64]), ["x"])
        cb, _ = ir.build_function(callee)
        cb.ret(callee.args[0])
        fn = module.add_function("caller", ir.FunctionType(ir.I64, []))
        builder, _ = ir.build_function(fn)
        slot = builder.alloca(ir.PointerType(callee.function_type), "fp")
        builder.store(callee, slot)
        loaded = builder.load(slot, "target")
        result = builder.call(loaded, [ir.const_int(5)], "r")
        builder.ret(result)
        verify_module(module)
        roundtrip(module)

    def test_switch_and_casts(self):
        module = ir.Module("sw")
        fn = module.add_function("f", ir.FunctionType(ir.I64, [ir.I64]), ["x"])
        builder, entry = ir.build_function(fn)
        one = fn.add_block("one")
        other = fn.add_block("other")
        builder.switch(fn.args[0], other, [(ir.ConstantInt(ir.I64, 1), one)])
        builder.position_at_end(one)
        narrowed = builder.cast("trunc", fn.args[0], ir.I8, "n")
        widened = builder.cast("sext", narrowed, ir.I64, "w")
        builder.ret(widened)
        builder.position_at_end(other)
        as_float = builder.cast("sitofp", fn.args[0], ir.DOUBLE, "f")
        back = builder.cast("fptosi", as_float, ir.I64, "b")
        builder.ret(back)
        verify_module(module)
        roundtrip(module)

    def test_declarations_and_attributes(self):
        module = ir.Module("d")
        fn = module.declare_function("pure_fn", ir.FunctionType(ir.DOUBLE, [ir.DOUBLE]))
        fn.attributes.add("pure")
        reparsed = roundtrip(module)
        assert "pure" in reparsed.get_function("pure_fn").attributes

    def test_select_and_float_ops(self):
        module = ir.Module("fl")
        fn = module.add_function("f", ir.FunctionType(ir.DOUBLE, [ir.DOUBLE]), ["x"])
        builder, _ = ir.build_function(fn)
        doubled = builder.fmul(fn.args[0], ir.const_float(2.0), "d")
        is_big = builder.fcmp("ogt", doubled, ir.const_float(10.0), "big")
        result = builder.select(is_big, doubled, fn.args[0], "sel")
        builder.ret(result)
        verify_module(module)
        roundtrip(module)

    def test_negative_and_null_constants(self):
        module = ir.Module("n")
        fn = module.add_function("f", ir.FunctionType(ir.I64, []))
        builder, _ = ir.build_function(fn)
        ptr_ty = ir.PointerType(ir.I64)
        slot = builder.alloca(ptr_ty, "s")
        builder.store(ir.ConstantNull(ir.PointerType(ir.I64)), slot)
        value = builder.add(ir.const_int(-5), ir.const_int(3), "v")
        builder.ret(value)
        verify_module(module)
        roundtrip(module)


class TestParseErrors:
    def test_unknown_opcode(self):
        text = """
define @f() -> void {
entry:
  wiggle i64 1, i64 2
  ret void
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_undefined_value(self):
        text = """
define @f() -> i64 {
entry:
  ret i64 %nope
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_branch_to_unknown_block(self):
        text = """
define @f() -> void {
entry:
  br label %missing
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_duplicate_block(self):
        text = """
define @f() -> void {
entry:
  ret void
entry:
  ret void
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_missing_closing_brace(self):
        text = """
define @f() -> void {
entry:
  ret void
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_duplicate_function(self):
        text = """
declare @f() -> void

declare @f() -> void
"""
        with pytest.raises(ValueError):
            parse_module(text)

    def test_unknown_struct(self):
        text = """
define @f(%mystery* %p) -> void {
entry:
  ret void
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_comments_and_blank_lines_ignored(self):
        text = """
; leading comment

define @f() -> i64 {
entry:
  ; a comment inside
  ret i64 7
}
"""
        module = parse_module(text)
        assert module.get_function("f") is not None
