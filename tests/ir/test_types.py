"""Unit tests for the IR type system."""

import pytest

from repro.ir import (
    DOUBLE,
    I1,
    I8,
    I32,
    I64,
    VOID,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    pointer_to,
)


class TestIntType:
    def test_interning(self):
        assert IntType(64) is IntType(64)
        assert IntType(32) is not IntType(64)

    def test_equality(self):
        assert IntType(64) == I64
        assert IntType(32) != I64

    def test_width_validation(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(-8)

    def test_str(self):
        assert str(I1) == "i1"
        assert str(I64) == "i64"

    def test_size(self):
        assert I64.size_in_slots() == 1
        assert I8.size_in_slots() == 1

    def test_predicates(self):
        assert I64.is_integer()
        assert I64.is_scalar()
        assert not I64.is_float()
        assert not I64.is_pointer()


class TestFloatType:
    def test_singleton(self):
        from repro.ir import FloatType

        assert FloatType() is DOUBLE

    def test_str(self):
        assert str(DOUBLE) == "double"

    def test_predicates(self):
        assert DOUBLE.is_float()
        assert DOUBLE.is_scalar()
        assert not DOUBLE.is_integer()


class TestVoidType:
    def test_no_size(self):
        with pytest.raises(TypeError):
            VOID.size_in_slots()

    def test_predicates(self):
        assert VOID.is_void()
        assert not VOID.is_scalar()


class TestPointerType:
    def test_equality_is_structural(self):
        assert PointerType(I64) == PointerType(I64)
        assert PointerType(I64) != PointerType(I32)

    def test_no_void_pointee(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_str(self):
        assert str(PointerType(I64)) == "i64*"
        assert str(PointerType(PointerType(I8))) == "i8**"

    def test_helper(self):
        assert pointer_to(I64) == PointerType(I64)

    def test_size(self):
        assert PointerType(DOUBLE).size_in_slots() == 1


class TestArrayType:
    def test_size(self):
        assert ArrayType(I64, 10).size_in_slots() == 10
        assert ArrayType(ArrayType(I64, 4), 3).size_in_slots() == 12

    def test_equality(self):
        assert ArrayType(I64, 10) == ArrayType(I64, 10)
        assert ArrayType(I64, 10) != ArrayType(I64, 11)
        assert ArrayType(I64, 10) != ArrayType(I32, 10)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            ArrayType(I64, -1)

    def test_str(self):
        assert str(ArrayType(DOUBLE, 5)) == "[5 x double]"


class TestStructType:
    def test_nominal_equality(self):
        a = StructType("point", [I64, I64])
        b = StructType("point", [DOUBLE])  # same name, different body
        assert a == b  # nominal typing

    def test_field_offsets(self):
        st = StructType("mix", [I64, ArrayType(I8, 4), DOUBLE])
        assert st.field_offset(0) == 0
        assert st.field_offset(1) == 1
        assert st.field_offset(2) == 5
        assert st.size_in_slots() == 6

    def test_field_offset_bounds(self):
        st = StructType("p", [I64])
        with pytest.raises(IndexError):
            st.field_offset(1)

    def test_set_body(self):
        st = StructType("late")
        assert st.size_in_slots() == 0
        st.set_body([I64, I64])
        assert st.size_in_slots() == 2


class TestFunctionType:
    def test_equality(self):
        a = FunctionType(I64, [I64, DOUBLE])
        b = FunctionType(I64, [I64, DOUBLE])
        assert a == b
        assert a != FunctionType(I64, [I64])
        assert a != FunctionType(VOID, [I64, DOUBLE])

    def test_vararg_distinct(self):
        assert FunctionType(VOID, []) != FunctionType(VOID, [], vararg=True)

    def test_str(self):
        assert str(FunctionType(I64, [I64, I64])) == "i64 (i64, i64)"
        assert str(FunctionType(VOID, [], vararg=True)) == "void (...)"

    def test_no_size(self):
        with pytest.raises(TypeError):
            FunctionType(VOID, []).size_in_slots()

    def test_hashable(self):
        assert len({FunctionType(I64, []), FunctionType(I64, [])}) == 1
