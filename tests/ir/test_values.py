"""Unit tests for values, constants, and the def-use machinery."""

import pytest

from repro.ir import (
    DOUBLE,
    I8,
    I64,
    BinaryOp,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    IntType,
    PointerType,
    UndefValue,
    const_bool,
    const_float,
    const_int,
    wrap_int,
)


class TestConstantInt:
    def test_wrapping_to_width(self):
        assert ConstantInt(I8, 255).value == -1
        assert ConstantInt(I8, 128).value == -128
        assert ConstantInt(I8, 127).value == 127
        assert ConstantInt(I64, 2**63).value == -(2**63)

    def test_equality_and_hash(self):
        assert ConstantInt(I64, 5) == ConstantInt(I64, 5)
        assert ConstantInt(I64, 5) != ConstantInt(IntType(32), 5)
        assert len({ConstantInt(I64, 5), ConstantInt(I64, 5)}) == 1

    def test_ref(self):
        assert ConstantInt(I64, -3).ref() == "-3"


class TestConstantFloat:
    def test_ref_always_float_syntax(self):
        assert "." in ConstantFloat(DOUBLE, 1.0).ref()
        assert ConstantFloat(DOUBLE, 0.5).ref() == "0.5"

    def test_equality(self):
        assert ConstantFloat(DOUBLE, 1.5) == ConstantFloat(DOUBLE, 1.5)
        assert ConstantFloat(DOUBLE, 1.5) != ConstantFloat(DOUBLE, 2.5)


class TestWrapInt:
    def test_boundaries(self):
        assert wrap_int(0, I8) == 0
        assert wrap_int(127, I8) == 127
        assert wrap_int(128, I8) == -128
        assert wrap_int(-129, I8) == 127
        assert wrap_int(256, I8) == 0

    def test_i1(self):
        one = IntType(1)
        assert wrap_int(1, one) == -1  # 1-bit signed: 1 wraps to -1
        assert wrap_int(0, one) == 0


class TestHelpers:
    def test_const_int_default_width(self):
        assert const_int(7).type == I64

    def test_const_bool(self):
        assert const_bool(True).type == IntType(1)
        assert const_bool(False).value == 0

    def test_const_float(self):
        assert const_float(2.0).type == DOUBLE


class TestUseLists:
    def test_operands_register_uses(self):
        a = const_int(1)
        b = const_int(2)
        add = BinaryOp("add", a, b)
        assert any(u.user is add for u in a.uses)
        assert any(u.user is add for u in b.uses)

    def test_replace_all_uses_with(self):
        a = const_int(1)
        b = const_int(2)
        c = const_int(3)
        add = BinaryOp("add", a, a)
        a.replace_all_uses_with(c)
        assert add.lhs is c and add.rhs is c
        assert not a.uses
        del b

    def test_rauw_self_is_noop(self):
        a = const_int(1)
        add = BinaryOp("add", a, a)
        a.replace_all_uses_with(a)
        assert add.lhs is a

    def test_set_operand_updates_use_lists(self):
        a, b, c = const_int(1), const_int(2), const_int(3)
        add = BinaryOp("add", a, b)
        add.set_operand(0, c)
        assert add.lhs is c
        assert not any(u.user is add and u.index == 0 for u in a.uses)
        assert any(u.user is add for u in c.uses)

    def test_users_deduplicates(self):
        a = const_int(1)
        add = BinaryOp("add", a, a)
        assert list(a.users()) == [add]
        assert a.num_uses() == 2

    def test_drop_all_operands(self):
        a, b = const_int(1), const_int(2)
        add = BinaryOp("add", a, b)
        add.drop_all_operands()
        assert not a.uses and not b.uses
        assert add.operands == []


class TestGlobalVariable:
    def test_value_type_is_pointer(self):
        gv = GlobalVariable(I64, "g")
        assert gv.type == PointerType(I64)
        assert gv.allocated_type == I64

    def test_ref(self):
        assert GlobalVariable(I64, "g").ref() == "@g"


class TestMiscConstants:
    def test_null(self):
        null = ConstantNull(PointerType(I64))
        assert null.ref() == "null"
        assert null == ConstantNull(PointerType(I64))
        assert null != ConstantNull(PointerType(I8))

    def test_undef(self):
        assert UndefValue(I64).ref() == "undef"
        assert UndefValue(I64) == UndefValue(I64)
        assert UndefValue(I64) != UndefValue(I8)
