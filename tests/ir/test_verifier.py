"""Verifier tests: each well-formedness rule catches its violation."""

import pytest

from repro import ir
from repro.ir import (
    I8,
    I64,
    VOID,
    BinaryOp,
    Branch,
    CondBranch,
    FunctionType,
    Module,
    Phi,
    Ret,
    Store,
    VerificationError,
    const_bool,
    const_int,
    verify_function,
    verify_module,
)
from tests.conftest import build_count_loop


def make_fn(ret=I64, params=(), name="f"):
    module = Module("m")
    fn = module.add_function(name, FunctionType(ret, list(params)))
    return module, fn


class TestBlockStructure:
    def test_valid_module_passes(self):
        module, _, _ = build_count_loop()
        verify_module(module)  # should not raise

    def test_empty_block(self):
        module, fn = make_fn(VOID)
        fn.add_block("entry")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(fn)

    def test_missing_terminator(self):
        module, fn = make_fn()
        builder, _ = ir.build_function(fn)
        builder.add(const_int(1), const_int(2))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_terminator_in_middle(self):
        module, fn = make_fn(VOID)
        builder, entry = ir.build_function(fn)
        builder.ret()
        # Append manually past the terminator.
        inst = BinaryOp("add", const_int(1), const_int(2))
        inst.parent = entry
        entry.instructions.append(inst)
        ret2 = Ret()
        ret2.parent = entry
        entry.instructions.append(ret2)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_branch_to_foreign_block(self):
        module, fn = make_fn(VOID)
        other_module, other_fn = make_fn(VOID, name="g")
        foreign = other_fn.add_block("far")
        foreign.append(Ret())
        builder, _ = ir.build_function(fn)
        builder.br(foreign)
        with pytest.raises(VerificationError, match="not in this function"):
            verify_function(fn)


class TestPhiRules:
    def test_phi_missing_edge(self):
        module, _, values = build_count_loop()
        phi = values["i"]
        phi.remove_incoming(values["body"])
        with pytest.raises(VerificationError, match="missing edges"):
            verify_module(module)

    def test_phi_from_non_predecessor(self):
        module, fn, values = build_count_loop()
        phi = values["i"]
        phi.add_incoming(const_int(0), values["exit"])
        with pytest.raises(VerificationError, match="non-predecessor"):
            verify_module(module)

    def test_phi_not_grouped_at_top(self):
        module, fn, values = build_count_loop()
        header = values["header"]
        phi = values["i"]
        header.instructions.remove(phi)
        header.instructions.insert(2, phi)
        with pytest.raises(VerificationError, match="top"):
            verify_module(module)

    def test_phi_type_mismatch(self):
        module, fn, values = build_count_loop()
        phi = values["i"]
        phi.set_incoming_value_for(values["body"], const_bool(True))
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_phi_duplicate_edge_from_same_predecessor(self):
        module, _, values = build_count_loop()
        phi = values["i"]
        phi.add_incoming(const_int(5), values["body"])
        with pytest.raises(VerificationError, match="duplicate edge"):
            verify_module(module)


class TestTypeRules:
    def test_binary_operand_mismatch(self):
        module, fn = make_fn(VOID)
        builder, _ = ir.build_function(fn)
        bad = BinaryOp("add", const_int(1), const_int(1))
        bad.set_operand(1, ir.ConstantInt(I8, 1))
        bad.parent = builder.block
        builder.block.instructions.append(bad)
        builder.ret()
        with pytest.raises(VerificationError, match="mismatch"):
            verify_function(fn)

    def test_store_type_mismatch(self):
        module, fn = make_fn(VOID)
        builder, _ = ir.build_function(fn)
        slot = builder.alloca(I64)
        store = builder.store(const_int(1), slot)
        store.set_operand(0, ir.ConstantInt(I8, 1))
        builder.ret()
        with pytest.raises(VerificationError, match="store type"):
            verify_function(fn)

    def test_ret_type_mismatch(self):
        module, fn = make_fn(I64)
        builder, _ = ir.build_function(fn)
        builder.ret(ir.const_float(1.0))
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)

    def test_ret_void_in_value_function(self):
        module, fn = make_fn(I64)
        builder, _ = ir.build_function(fn)
        builder.ret()
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)

    def test_call_argument_mismatch(self):
        module = Module("m")
        callee = module.add_function("callee", FunctionType(VOID, [I64]))
        fn = module.add_function("f", FunctionType(VOID, []))
        builder, _ = ir.build_function(fn)
        call = builder.call(callee, [const_int(1)])
        call.set_operand(1, ir.const_float(1.0))
        builder.ret()
        with pytest.raises(VerificationError, match="argument"):
            verify_function(fn)

    def test_cond_br_requires_i1(self):
        module, fn = make_fn(VOID)
        builder, entry = ir.build_function(fn)
        b = fn.add_block("b")
        b.append(Ret())
        branch = CondBranch(const_bool(True), b, b)
        branch.set_operand(0, const_int(1))
        entry.append(branch)
        with pytest.raises(VerificationError, match="i1"):
            verify_function(fn)


class TestSSADominance:
    def test_use_before_def_same_block(self):
        module, fn = make_fn()
        builder, entry = ir.build_function(fn)
        a = builder.add(const_int(1), const_int(2), "a")
        b = builder.add(a, const_int(3), "b")
        builder.ret(b)
        # Move the definition after the use.
        entry.instructions.remove(a)
        entry.instructions.insert(1, a)
        with pytest.raises(VerificationError, match="before its definition"):
            verify_function(fn)

    def test_use_not_dominated(self):
        module, fn = make_fn()
        builder, entry = ir.build_function(fn)
        then_block = fn.add_block("then")
        else_block = fn.add_block("else")
        builder.cond_br(const_bool(True), then_block, else_block)
        builder.position_at_end(then_block)
        defined_in_then = builder.add(const_int(1), const_int(2), "v")
        builder.ret(defined_in_then)
        builder.position_at_end(else_block)
        builder.ret(defined_in_then)  # not dominated!
        with pytest.raises(VerificationError, match="non-dominating"):
            verify_function(fn)

    def test_argument_of_other_function(self):
        module = Module("m")
        f = module.add_function("f", FunctionType(I64, [I64]), ["x"])
        g = module.add_function("g", FunctionType(I64, [I64]), ["y"])
        builder, _ = ir.build_function(f)
        builder.ret(g.args[0])
        with pytest.raises(VerificationError, match="another function"):
            verify_function(f)

    def test_phi_incoming_dominance(self):
        # The incoming value must dominate the predecessor, not the phi.
        module, _, values = build_count_loop()
        verify_module(module)  # i.next defined in body dominates body edge

    def test_non_phi_self_use_rejected(self):
        module, fn = make_fn()
        builder, _ = ir.build_function(fn)
        a = builder.add(const_int(1), const_int(2), "a")
        builder.ret(a)
        a.set_operand(1, a)
        with pytest.raises(VerificationError, match="uses its own result"):
            verify_function(fn)

    def test_phi_self_use_around_back_edge_is_legal(self):
        # A phi consuming its own result through a back edge is valid SSA.
        module, fn, values = build_count_loop()
        phi = values["acc"]
        phi.set_incoming_value_for(values["body"], phi)
        verify_module(module)
