"""mem2reg and simplification pass tests, including a semantics-preservation
property test over generated programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.frontend import compile_source
from repro.frontend.parser import parse_program
from repro.frontend.codegen import CodeGenerator
from repro.interp import Interpreter
from repro.opt.mem2reg import promote_allocas_module
from repro.opt.simplify import simplify_module


def compile_unoptimized(source):
    """Codegen without mem2reg/simplify (alloca form)."""
    module = CodeGenerator("raw").generate(parse_program(source))
    ir.verify_module(module)
    return module


class TestMem2Reg:
    def test_promotes_scalars(self):
        source = "int main() { int x = 1; int y = 2; return x + y; }"
        module = compile_unoptimized(source)
        before = sum(
            1 for i in module.get_function("main").instructions()
            if isinstance(i, ir.Alloca)
        )
        assert before >= 2
        promoted = promote_allocas_module(module)
        assert promoted >= 2
        ir.verify_module(module)
        after = sum(
            1 for i in module.get_function("main").instructions()
            if isinstance(i, ir.Alloca)
        )
        assert after == 0

    def test_keeps_arrays_and_escaping(self):
        source = """
void sink(int *p) { *p = 1; }
int main() {
  int a[4];
  int x = 0;
  sink(&x);
  a[0] = x;
  return a[0];
}
"""
        module = compile_unoptimized(source)
        promote_allocas_module(module)
        ir.verify_module(module)
        allocas = [
            i for i in module.get_function("main").instructions()
            if isinstance(i, ir.Alloca)
        ]
        # The array and the address-taken scalar must survive.
        assert len(allocas) == 2

    def test_loop_variables_become_phis(self):
        source = "int main() { int i = 0; while (i < 5) { i = i + 1; } return i; }"
        module = compile_unoptimized(source)
        promote_allocas_module(module)
        fn = module.get_function("main")
        assert any(isinstance(i, ir.Phi) for i in fn.instructions())
        ir.verify_module(module)

    def test_semantics_preserved(self):
        source = """
int main() {
  int a = 3;
  int b = 4;
  int i;
  for (i = 0; i < 6; i = i + 1) {
    if (i % 2 == 0) { a = a + b; } else { b = b + 1; }
  }
  return a * 100 + b;
}
"""
        raw = compile_unoptimized(source)
        expected = Interpreter(raw).run().return_value
        optimized = compile_unoptimized(source)
        promote_allocas_module(optimized)
        simplify_module(optimized)
        ir.verify_module(optimized)
        assert Interpreter(optimized).run().return_value == expected


class TestSimplify:
    def test_constant_folding(self):
        module = compile_source("int main() { return 2 + 3 * 4; }")
        main = module.get_function("main")
        # Everything folds to `ret 14`.
        assert main.num_instructions() == 1
        term = main.entry.terminator
        assert isinstance(term.value, ir.ConstantInt) and term.value.value == 14

    def test_branch_folding_removes_dead_code(self):
        module = compile_source(
            "int main() { if (1) { return 5; } else { return 9; } }"
        )
        main = module.get_function("main")
        assert len(main.blocks) == 1

    def test_algebraic_identities(self):
        module = compile_source(
            """
int opaque = 7;
int main() { int x = opaque; return (x + 0) * 1; }
"""
        )
        main = module.get_function("main")
        opcodes = [i.opcode for i in main.instructions()]
        assert "add" not in opcodes and "mul" not in opcodes

    def test_condition_chain_collapsed(self):
        module = compile_source(
            """
int flag = 1;
int main() { if (flag > 0) { return 1; } return 0; }
"""
        )
        main = module.get_function("main")
        # One icmp for the comparison; no redundant zext+icmp-ne chain.
        icmps = [i for i in main.instructions() if isinstance(i, ir.ICmp)]
        assert len(icmps) == 1


# --------------------------------------------------------------------------- property test
@st.composite
def arithmetic_program(draw):
    """A random straight-line + loop MiniC program over two variables."""
    statements = []
    num_statements = draw(st.integers(min_value=1, max_value=6))
    ops = ["+", "-", "*"]
    for _ in range(num_statements):
        target = draw(st.sampled_from(["a", "b"]))
        lhs = draw(st.sampled_from(["a", "b", str(draw(st.integers(0, 9)))]))
        rhs = draw(st.sampled_from(["a", "b", str(draw(st.integers(1, 9)))]))
        op = draw(st.sampled_from(ops))
        statements.append(f"{target} = {lhs} {op} {rhs};")
    loop_bound = draw(st.integers(min_value=0, max_value=8))
    body = "\n    ".join(statements)
    return f"""
int main() {{
  int a = {draw(st.integers(-5, 5))};
  int b = {draw(st.integers(-5, 5))};
  int i;
  for (i = 0; i < {loop_bound}; i = i + 1) {{
    {body}
  }}
  return a * 31 + b;
}}
"""


class TestOptimizationPreservesSemantics:
    @settings(max_examples=40, deadline=None)
    @given(arithmetic_program())
    def test_mem2reg_and_simplify_preserve_results(self, source):
        raw = compile_unoptimized(source)
        expected = Interpreter(raw).run().return_value
        optimized = compile_unoptimized(source)
        promote_allocas_module(optimized)
        simplify_module(optimized)
        ir.verify_module(optimized)
        actual = Interpreter(optimized).run().return_value
        assert actual == expected
