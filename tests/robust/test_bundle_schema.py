"""Golden lock on the crash-bundle ``report.json`` schema.

Crash bundles are the repro's offline-reproduction artifact: external
scripts (and the serve daemon's clients) parse ``report.json`` by key.
These tests pin the exact key sets so an accidental schema change fails
loudly here instead of silently breaking downstream consumers.
"""

import json

import pytest

from repro.robust.diagnostics import (
    MODULE_FILE,
    REPORT_FILE,
    CrashBundle,
    TransformError,
)

#: The locked schema.  Extending it is allowed only as a deliberate,
#: documented change — update these sets and DESIGN.md together.
REPORT_KEYS = {"index", "pass", "module_ir", "error", "diagnostics"}
ERROR_KEYS = {"pass", "phase", "kind", "message", "fault", "seconds",
              "traceback"}


@pytest.fixture
def bundle():
    error = TransformError(
        "doall", "verify", "VerificationError", "use before def",
        traceback_text="Traceback ...", fault="verify:1", seconds=0.25,
    )
    return CrashBundle(
        3, "doall", "define i64 @main() {\n}\n", error,
        diagnostics=[{"checker": "races", "severity": "warning"}],
    )


class TestReportSchema:
    def test_report_json_keys_are_locked(self, bundle, tmp_path):
        directory = bundle.write(tmp_path)
        report = json.loads((directory / REPORT_FILE).read_text())
        assert set(report) == REPORT_KEYS
        assert set(report["error"]) == ERROR_KEYS

    def test_report_values(self, bundle, tmp_path):
        directory = bundle.write(tmp_path)
        report = json.loads((directory / REPORT_FILE).read_text())
        assert report["index"] == 3
        assert report["pass"] == "doall"
        assert report["module_ir"] == MODULE_FILE
        assert report["error"]["kind"] == "VerificationError"
        assert report["error"]["fault"] == "verify:1"
        assert report["diagnostics"] == [
            {"checker": "races", "severity": "warning"}
        ]

    def test_layout_on_disk(self, bundle, tmp_path):
        directory = bundle.write(tmp_path)
        assert directory == tmp_path / "003-doall"
        assert (directory / MODULE_FILE).read_text() == bundle.ir_text

    def test_transform_error_to_dict_keys_are_locked(self, bundle):
        assert set(bundle.error.to_dict()) == ERROR_KEYS


class TestRoundTrip:
    def test_write_read_round_trips(self, bundle, tmp_path):
        directory = bundle.write(tmp_path)
        loaded = CrashBundle.read(directory)
        assert loaded.index == bundle.index
        assert loaded.pass_name == bundle.pass_name
        assert loaded.ir_text == bundle.ir_text
        assert loaded.diagnostics == bundle.diagnostics
        assert loaded.error.to_dict() == bundle.error.to_dict()
        assert loaded.path == directory

    def test_round_trip_is_stable_under_rewrite(self, bundle, tmp_path):
        first = bundle.write(tmp_path / "a")
        loaded = CrashBundle.read(first)
        second = loaded.write(tmp_path / "b")
        assert (
            (first / REPORT_FILE).read_text()
            == (second / REPORT_FILE).read_text()
        )


class TestServiceBundlesShareTheSchema:
    def test_daemon_written_bundle_parses_with_the_same_keys(self, tmp_path):
        # The serve daemon reuses the bundle format for service-scope
        # failures (the request's inline IR stands in for the module).
        from repro.serve.daemon import Supervisor

        supervisor = Supervisor(num_workers=1, crash_dir=str(tmp_path))
        try:
            path = supervisor._write_bundle(
                {"op": "run", "ir": "", "faults": "serve_kill:1"},
                {"kind": "WorkerCrashed", "message": "died",
                 "scope": "service"},
            )
            from pathlib import Path

            report = json.loads((Path(path) / REPORT_FILE).read_text())
            assert set(report) == REPORT_KEYS
            assert set(report["error"]) == ERROR_KEYS
            assert report["error"]["kind"] == "WorkerCrashed"
        finally:
            supervisor.stop()
