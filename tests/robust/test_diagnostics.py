"""Crash bundles, structured transform errors, and the noelle-bin entry check."""

import json

import pytest

from repro.frontend.codegen import compile_source
from repro.robust.diagnostics import (
    MODULE_FILE,
    REPORT_FILE,
    CrashBundle,
    EntryNotFoundError,
    TransformError,
)
from repro.tools.pipeline import make_binary

SOURCE = """
int helper(int x) { return x + 1; }
int main() { print_int(helper(41)); return 0; }
"""


class TestTransformError:
    def test_from_exception_captures_structure(self):
        try:
            raise ValueError("bad loop shape")
        except ValueError as error:
            record = TransformError.from_exception(
                "helix", "run", error, fault="seed:1 (verify:2)", seconds=0.25
            )
        assert record.pass_name == "helix"
        assert record.phase == "run"
        assert record.kind == "ValueError"
        assert record.message == "bad loop shape"
        assert record.fault == "seed:1 (verify:2)"
        assert "ValueError: bad loop shape" in record.traceback
        assert "failed during run" in str(record)

    def test_dict_roundtrip(self):
        record = TransformError("licm", "verify", "VerificationError", "boom")
        clone = TransformError.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()


class TestCrashBundle:
    def test_write_and_read_roundtrip(self, tmp_path):
        error = TransformError("doall", "run", "InjectedFault", "injected",
                               fault="alias_query:3")
        bundle = CrashBundle(0, "doall", "; module m\n", error)
        directory = bundle.write(tmp_path)
        assert directory == tmp_path / "000-doall"
        assert (directory / MODULE_FILE).read_text() == "; module m\n"
        report = json.loads((directory / REPORT_FILE).read_text())
        assert report["pass"] == "doall"
        assert report["error"]["fault"] == "alias_query:3"
        # The diagnostics key is part of the stable schema even when no
        # checkers ran.
        assert report["diagnostics"] == []

        loaded = CrashBundle.read(directory)
        assert loaded.ir_text == bundle.ir_text
        assert loaded.error.to_dict() == error.to_dict()
        assert loaded.diagnostics == []

    def test_checker_diagnostics_round_trip(self, tmp_path):
        error = TransformError("helix", "check", "CheckFailure", "1 error(s)")
        findings = [
            {"checker": "races", "severity": "error",
             "message": "loop-carried dependence", "function": "f.helix.task",
             "location": "%acc", "pass": "helix"},
            {"checker": "lint", "severity": "info", "message": "dead value",
             "function": "f", "location": "%v", "pass": None},
        ]
        bundle = CrashBundle(1, "helix", "; module m\n", error,
                             diagnostics=findings)
        directory = bundle.write(tmp_path)
        report = json.loads((directory / REPORT_FILE).read_text())
        assert report["diagnostics"] == findings
        loaded = CrashBundle.read(directory)
        assert loaded.diagnostics == findings

    def test_pass_names_are_slugged(self, tmp_path):
        error = TransformError("rm lc/dependences", "run", "X", "y")
        bundle = CrashBundle(2, "rm lc/dependences", "", error)
        directory = bundle.write(tmp_path)
        assert directory.name == "002-rm-lc-dependences"


class TestEntryNotFound:
    def test_missing_entry_lists_available_functions(self):
        binary = make_binary(compile_source(SOURCE, "demo"))
        with pytest.raises(EntryNotFoundError) as exc:
            binary.run(entry="nope")
        assert exc.value.entry == "nope"
        assert "main" in exc.value.available
        assert "@main" in str(exc.value)
        assert "@helper" in str(exc.value)

    def test_declaration_entry_is_rejected(self):
        binary = make_binary(compile_source(SOURCE, "demo"))
        # print_int exists but only as a declaration — not runnable.
        with pytest.raises(EntryNotFoundError):
            binary.run(entry="print_int")

    def test_valid_entry_still_runs(self):
        binary = make_binary(compile_source(SOURCE, "demo"))
        result = binary.run()
        assert result.output == [42]
