"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.robust import faults
from repro.robust.faults import (
    Budget,
    FaultPlan,
    InjectedFault,
    PassDeadlineExceeded,
)


class TestFaultPlan:
    def test_spec_roundtrip(self):
        plan = FaultPlan.from_spec("alias_query:5")
        assert plan.site == "alias_query"
        assert plan.trigger == 5
        assert plan.describe() == "alias_query:5"

    @pytest.mark.parametrize("bad", ["", "alias_query", "verify:x", "bogus:3",
                                     "verify:0", "snapshot:-1"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_seeded_plans_are_deterministic(self):
        for seed in range(10):
            a = FaultPlan.from_seed(seed)
            b = FaultPlan.from_seed(seed)
            assert (a.site, a.trigger) == (b.site, b.trigger)
            assert a.describe().startswith(f"seed:{seed}")

    def test_seed_spec_parses(self):
        plan = FaultPlan.from_spec("seed:3")
        assert plan.seed == 3
        assert (plan.site, plan.trigger) == (
            FaultPlan.from_seed(3).site,
            FaultPlan.from_seed(3).trigger,
        )

    def test_fires_exactly_once_at_the_nth_visit(self):
        plan = FaultPlan("verify", 2)
        plan.note("verify")  # 1st: no fire
        with pytest.raises(InjectedFault) as exc:
            plan.note("verify")  # 2nd: fire
        assert exc.value.site == "verify"
        assert exc.value.ordinal == 2
        assert plan.fired
        assert plan.fired_at == ("verify", 2)
        plan.note("verify")  # 3rd: already fired, silent
        assert plan.counts["verify"] == 3

    def test_other_sites_do_not_trigger(self):
        plan = FaultPlan("snapshot", 1)
        plan.note("verify")
        plan.note("alias_query")
        assert not plan.fired

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        assert not faults.enabled_in_env()
        monkeypatch.setenv(faults.ENV_VAR, "verify:1")
        plan = FaultPlan.from_env()
        assert (plan.site, plan.trigger) == ("verify", 1)
        assert faults.enabled_in_env()


class TestArming:
    def test_checkpoint_is_noop_when_unarmed(self):
        faults.checkpoint("alias_query")  # must not raise

    def test_armed_plan_fires_and_restores(self):
        plan = FaultPlan("alias_query", 1)
        with faults.armed(plan):
            assert faults.active_plan() is plan
            with pytest.raises(InjectedFault):
                faults.checkpoint("alias_query")
        assert faults.active_plan() is None
        faults.checkpoint("alias_query")  # disarmed again

    def test_suspended_disables_counting(self):
        plan = FaultPlan("verify", 1)
        with faults.armed(plan):
            with faults.suspended():
                faults.checkpoint("verify")
            assert plan.counts["verify"] == 0
            with pytest.raises(InjectedFault):
                faults.checkpoint("verify")

    def test_nested_arming_restores_outer(self):
        outer = FaultPlan("verify", 99)
        inner = FaultPlan("verify", 99)
        with faults.armed(outer):
            with faults.armed(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer


class TestBudget:
    def test_unlimited_budget_never_expires(self):
        budget = Budget(None)
        assert not budget.expired()
        budget.check()

    def test_expired_budget_raises_at_checkpoint(self):
        ticks = iter([0.0, 1.0, 2.0, 3.0])
        budget = Budget(0.5, clock=lambda: next(ticks))
        assert budget.expired()
        with faults.armed(None, budget):
            with pytest.raises(PassDeadlineExceeded):
                faults.checkpoint("alias_query")
