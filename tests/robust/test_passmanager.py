"""The transactional pass manager: snapshots, rollback, budgets, registry."""

import time

import pytest

from repro import ir
from repro.core.noelle import Noelle
from repro.frontend.codegen import compile_source
from repro.interp import interp as interp_mod
from repro.interp.interp import Interpreter, StepLimitExceeded
from repro.ir import print_module, verify_module
from repro.robust.faults import FaultPlan, InjectedFault
from repro.robust.passmanager import PassManager, build_pass
from repro.tools.meta_pdg_embed import embed_pdg, has_embedded_pdg
from repro.workloads.registry import all_workloads

SOURCE = """
int g = 6;
int out[60];
int main() {
  int i;
  for (i = 0; i < 60; i = i + 1) {
    int k = g * 3;
    out[i] = k + i;
  }
  print_int(out[10]);
  return 0;
}
"""


#: A memory accumulator (``total``) whose promotion forces alias queries.
ACC_SOURCE = """
int data[300];
int total = 0;
int main() {
  int i;
  for (i = 0; i < 300; i = i + 1) { data[i] = i * 5 % 23; }
  for (i = 0; i < 300; i = i + 1) { total = total + data[i]; }
  print_int(total);
  return total;
}
"""


def fresh_manager(source=SOURCE, **kwargs):
    module = compile_source(source, "demo")
    noelle = Noelle(module)
    kwargs.setdefault("fault_plan", None)  # isolate from NOELLE_FAULTS
    return PassManager(noelle, **kwargs), module


class TestSuccessPath:
    def test_ok_pass_commits_and_records(self):
        manager, module = fresh_manager()
        before = print_module(module)
        result = manager.run_registered("licm")
        assert result.ok and not result.rolled_back
        assert result.value >= 1  # g * 3 is hoistable
        assert result.error is None
        assert print_module(module) != before  # the change was kept
        assert manager.bundles == []
        assert Interpreter(module).run().output == [28]

    def test_unknown_pass_rejected_before_any_transaction(self):
        manager, _ = fresh_manager()
        with pytest.raises(ValueError, match="unknown tool"):
            manager.run_registered("does-not-exist")
        assert manager.results == []

    def test_registry_covers_all_ten_xforms_and_rm_lc(self):
        names = ["doall", "dswp", "helix", "licm", "perspective", "dead",
                 "coos", "prvjeeves", "timesqueezer", "carat",
                 "rm-lc-dependences"]
        for name in names:
            canonical, body = build_pass(name)
            assert canonical == name
            assert callable(body)
        # Harness/CLI aliases resolve to the same passes.
        assert build_pass("prvj")[0] == "prvjeeves"
        assert build_pass("time")[0] == "timesqueezer"
        assert build_pass("rm_lc_dependences")[0] == "rm-lc-dependences"


class TestRollback:
    def test_exception_mid_mutation_rolls_back_byte_identical(self, tmp_path):
        manager, module = fresh_manager(crash_dir=tmp_path)
        before = print_module(module)

        def mutate_and_die(noelle):
            noelle.module.add_global("junk", ir.I64)
            raise RuntimeError("boom")

        result = manager.run("bad-pass", mutate_and_die)
        assert result.rolled_back
        assert result.error.kind == "RuntimeError"
        assert result.error.phase == "run"
        assert print_module(module) == before
        assert "junk" not in module.globals
        verify_module(module)
        # Crash bundle holds the byte-identical pre-pass IR.
        assert result.bundle is not None
        assert (result.bundle / "module.ir").read_text() == before

    def test_verifier_rejection_rolls_back(self):
        manager, module = fresh_manager()
        before = print_module(module)

        def drop_terminator(noelle):
            main = noelle.module.get_function("main")
            main.blocks[0].instructions.pop()

        result = manager.run("corruptor", drop_terminator)
        assert result.rolled_back
        assert result.error.kind == "VerificationError"
        assert result.error.phase == "verify"
        assert print_module(module) == before

    def test_injected_alias_fault_rolls_back(self, tmp_path):
        manager, module = fresh_manager(
            ACC_SOURCE,
            crash_dir=tmp_path,
            fault_plan=FaultPlan.from_spec("alias_query:1"),
        )
        before = print_module(module)
        result = manager.run_registered("rm-lc-dependences")
        assert result.rolled_back
        assert result.error.kind == "InjectedFault"
        assert result.error.fault == "alias_query:1"
        assert print_module(module) == before
        assert len(list(tmp_path.iterdir())) == 1

    def test_snapshot_fault_leaves_module_untouched(self):
        manager, module = fresh_manager(
            fault_plan=FaultPlan.from_spec("snapshot:1")
        )
        before = print_module(module)
        result = manager.run_registered("licm")
        assert result.rolled_back
        assert result.error.phase == "snapshot"
        assert print_module(module) == before
        # The one-shot plan is spent: the retry commits.
        retry = manager.run_registered("licm")
        assert retry.ok

    def test_metadata_survives_rollback(self):
        manager, module = fresh_manager()
        embed_pdg(module)
        module.metadata["custom.tag"] = [1, 2, 3]
        main = module.get_function("main")
        main.metadata["custom.fn"] = True
        first_inst = main.blocks[0].instructions[0]
        first_inst.metadata["custom.inst"] = 7
        saved_module_md = dict(module.metadata)

        def mutate_metadata_and_die(noelle):
            noelle.module.metadata.clear()
            noelle.module.get_function("main").metadata.clear()
            raise RuntimeError("boom")

        result = manager.run("md-killer", mutate_metadata_and_die)
        assert result.rolled_back
        assert module.metadata == saved_module_md
        assert has_embedded_pdg(module)
        main = module.get_function("main")
        assert main.metadata.get("custom.fn") is True
        assert main.blocks[0].instructions[0].metadata.get("custom.inst") == 7

    def test_strict_manager_rolls_back_then_reraises(self):
        manager, module = fresh_manager(strict=True)
        before = print_module(module)

        def die(noelle):
            raise KeyError("nope")

        with pytest.raises(KeyError):
            manager.run("strict-pass", die)
        assert print_module(module) == before
        assert manager.results[-1].rolled_back


class TestBudgets:
    def test_wall_clock_overrun_rolls_back(self):
        manager, module = fresh_manager(deadline_s=0.0)
        before = print_module(module)

        def slow(noelle):
            time.sleep(0.01)

        result = manager.run("sleepy", slow)
        assert result.rolled_back
        assert result.error.kind == "PassDeadlineExceeded"
        assert print_module(module) == before

    def test_step_budget_caps_pass_interpreters(self):
        manager, module = fresh_manager(step_budget=10)

        def profile_like(noelle):
            Interpreter(noelle.module).run()

        result = manager.run("profiler", profile_like)
        assert result.rolled_back
        assert result.error.kind == "StepLimitExceeded"
        # The cap is lifted once the transaction is over.
        assert interp_mod._STEP_BUDGET is None
        assert Interpreter(module).step_limit == 50_000_000
        assert Interpreter(module).run().output == [28]

    def test_explicit_interpreter_limits_still_tighten(self):
        manager, module = fresh_manager(step_budget=1_000_000)

        def tight(noelle):
            assert Interpreter(noelle.module, step_limit=5).step_limit == 5
            assert Interpreter(noelle.module).step_limit == 1_000_000

        assert manager.run("limits", tight).ok


class TestCheckGate:
    def test_gate_is_off_by_default(self, monkeypatch):
        monkeypatch.delenv("NOELLE_CHECKS", raising=False)
        manager, _ = fresh_manager()
        assert manager.checks is False

    def test_environment_enables_gate(self, monkeypatch):
        monkeypatch.setenv("NOELLE_CHECKS", "1")
        manager, _ = fresh_manager()
        assert manager.checks is True
        monkeypatch.setenv("NOELLE_CHECKS", "0")
        manager, _ = fresh_manager()
        assert manager.checks is False

    def test_clean_pass_commits_with_gate_on(self):
        manager, module = fresh_manager(checks=True)
        result = manager.run_registered("licm")
        assert result.ok
        assert not any(d.severity == "error" for d in result.diagnostics)

    def test_checker_errors_roll_back_and_land_in_the_bundle(self, tmp_path):
        import json

        from repro.xforms import HELIX
        from tests.checks.fixtures import (
            HELIX_KERNEL_SOURCE,
            TASK_NAME,
            segment_marker_calls,
        )

        module = compile_source(HELIX_KERNEL_SOURCE, "fixture")
        noelle = Noelle(module)
        manager = PassManager(noelle, crash_dir=tmp_path, fault_plan=None,
                              checks=True)
        before = print_module(module)

        def buggy_parallelize(noelle):
            target = next(
                loop for loop in noelle.loops()
                if loop.structure.function.name == "kernel"
            )
            HELIX(noelle, 4).parallelize(target)
            noelle.invalidate()
            task = noelle.module.get_function(TASK_NAME)
            for marker in segment_marker_calls(task):
                marker.erase_from_parent()
            noelle.invalidate()

        result = manager.run("buggy-helix", buggy_parallelize)
        assert result.rolled_back
        assert result.error.kind == "CheckFailure"
        assert result.error.phase == "check"
        assert print_module(module) == before
        findings = manager.bundles[-1].diagnostics
        assert any(
            d["checker"] == "races" and d["severity"] == "error"
            for d in findings
        )
        report = json.loads((result.bundle / "report.json").read_text())
        assert report["diagnostics"] == findings


class TestEnvironmentPlans:
    def test_env_plan_arms_default_managers(self, monkeypatch):
        monkeypatch.setenv("NOELLE_FAULTS", "verify:1")
        module = compile_source(SOURCE, "demo")
        manager = PassManager(Noelle(module))
        before = print_module(module)
        result = manager.run_registered("licm")
        assert result.rolled_back
        assert print_module(module) == before

    def test_explicit_none_disables_env_plan(self, monkeypatch):
        monkeypatch.setenv("NOELLE_FAULTS", "verify:1")
        module = compile_source(SOURCE, "demo")
        manager = PassManager(Noelle(module), fault_plan=None)
        assert manager.run_registered("licm").ok


@pytest.mark.parametrize(
    "workload", [w.name for w in all_workloads()],
)
def test_rollback_is_byte_identical_for_every_workload(workload, tmp_path):
    """Satellite: for every registry workload, a fault injected mid-pass
    must restore the module byte-identically to the pre-pass snapshot."""
    from repro.workloads.registry import get

    module = get(workload).compile()
    noelle = Noelle(module)
    manager = PassManager(
        noelle, crash_dir=tmp_path, fault_plan=FaultPlan.from_spec("verify:1")
    )
    before = print_module(module)
    result = manager.run_registered("licm")
    assert result.rolled_back
    assert print_module(module) == before
    verify_module(module)
    bundle_dirs = list(tmp_path.iterdir())
    assert len(bundle_dirs) == 1
    assert (bundle_dirs[0] / "module.ir").read_text() == before
