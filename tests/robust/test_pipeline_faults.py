"""Acceptance: graceful degradation of the Figure-1 pipeline under faults.

With a fault injected into any single pass of ``helix_pipeline``, the
pipeline must complete, emit exactly one crash bundle, leave a module
that passes ``verify_module``, and produce interpreter output equal to
the unoptimized module's output.
"""

import pytest

from repro.interp.interp import Interpreter
from repro.ir import verify_module
from repro.robust.faults import FaultPlan
from repro.robust.passmanager import PassManager
from repro.tools.pipeline import helix_pipeline, make_binary
from repro.tools.whole_ir import whole_ir_from_sources

MAIN_SRC = """
int values[900];
void fill(int n);
int score(int v);
int total = 0;
int main() {
  int i;
  fill(900);
  for (i = 0; i < 900; i = i + 1) {
    total = total + score(values[i]);
  }
  print_int(total);
  return total;
}
"""

LIB_SRC = """
int values[900];
void fill(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { values[i] = (i * 31 + 7) % 64; }
}
int score(int v) { return (v * v + 5) % 113; }
"""


@pytest.fixture(scope="module")
def baseline_output():
    sequential = whole_ir_from_sources([MAIN_SRC, LIB_SRC])
    return Interpreter(sequential).run().output


class TestPipelineUnderFaults:
    def test_no_faults_no_bundles(self, tmp_path, baseline_output):
        manager = PassManager(None, crash_dir=tmp_path, fault_plan=None)
        module = helix_pipeline(
            [MAIN_SRC, LIB_SRC], num_cores=8, pass_manager=manager
        )
        assert manager.rolled_back() == []
        assert list(tmp_path.iterdir()) == []
        result = make_binary(module, num_cores=8).run()
        assert result.output == baseline_output

    # The pipeline runs two transactions (rm-lc-dependences, helix); the
    # specs below land one fault in each phase of each transaction.
    @pytest.mark.parametrize(
        "spec, victim",
        [
            ("snapshot:1", "rm-lc-dependences"),
            ("snapshot:2", "helix"),
            ("verify:1", "rm-lc-dependences"),
            ("verify:2", "helix"),
            ("alias_query:1", "rm-lc-dependences"),
        ],
    )
    def test_single_fault_degrades_one_pass(
        self, tmp_path, baseline_output, spec, victim
    ):
        manager = PassManager(
            None, crash_dir=tmp_path, fault_plan=FaultPlan.from_spec(spec)
        )
        module = helix_pipeline(
            [MAIN_SRC, LIB_SRC], num_cores=8, pass_manager=manager
        )
        assert manager.fault_plan.fired
        rolled = manager.rolled_back()
        assert [r.name for r in rolled] == [victim]
        # Exactly one crash bundle on disk, holding the pre-pass IR.
        bundles = list(tmp_path.iterdir())
        assert len(bundles) == 1
        assert victim in bundles[0].name
        # The surviving module is sound and semantics-preserving.
        verify_module(module)
        result = make_binary(module, num_cores=8).run()
        assert result.trapped is None
        assert result.output == baseline_output

    def test_seeded_fault_degrades_gracefully(self, tmp_path, baseline_output):
        manager = PassManager(
            None, crash_dir=tmp_path, fault_plan=FaultPlan.from_seed(1)
        )
        module = helix_pipeline(
            [MAIN_SRC, LIB_SRC], num_cores=8, pass_manager=manager
        )
        verify_module(module)
        result = make_binary(module, num_cores=8).run()
        assert result.output == baseline_output
        # At most one transaction degraded (plans are one-shot).
        assert len(manager.rolled_back()) <= 1
        assert len(list(tmp_path.iterdir())) == len(manager.rolled_back())


class TestExperimentsUnaffected:
    """NOELLE_FAULTS only arms inside transactions, so the figure
    experiments (which never route through the pass manager) must be
    byte-for-byte reproducible under any fault environment."""

    def test_fig3_fig4_match_the_unfaulted_run(self, monkeypatch):
        from repro.experiments.figures import fig3_dependences, fig4_invariants
        from repro.workloads.registry import all_workloads

        subset = all_workloads()[:2]
        monkeypatch.delenv("NOELLE_FAULTS", raising=False)
        fig3_before = fig3_dependences(subset)
        fig4_before = fig4_invariants(subset)
        monkeypatch.setenv("NOELLE_FAULTS", "seed:1")
        assert fig3_dependences(subset) == fig3_before
        assert fig4_invariants(subset) == fig4_before
