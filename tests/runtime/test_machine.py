"""Simulated-machine tests: dispatch timing models and the cores knob."""

from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import FORK_OVERHEAD, ParallelMachine
from repro.tools import remove_loop_carried_dependences
from repro.xforms import DOALL, DSWP, HELIX
from tests.conftest import outputs_match

DOALL_SOURCE = """
int a[1500];
int main() {
  int i;
  for (i = 0; i < 1500; i = i + 1) { a[i] = (i * 29 + 1) % 77; }
  print_int(a[1000]);
  return a[1000];
}
"""


def prepare(source, technique, cores=8):
    module = compile_source(source)
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    remove_loop_carried_dependences(noelle)
    if technique == "doall":
        DOALL(noelle, cores).run()
    elif technique == "helix":
        HELIX(noelle, cores).run()
    else:
        DSWP(noelle).run()
    return module


class TestDoallModel:
    def test_wall_time_is_max_plus_overhead(self):
        module = prepare(DOALL_SOURCE, "doall")
        machine = ParallelMachine(module, num_cores=4)
        machine.run()
        execution = [e for e in machine.executions if e.kind == "doall"][0]
        assert execution.parallel_cycles < execution.sequential_cycles
        assert execution.parallel_cycles > FORK_OVERHEAD

    def test_more_cores_less_wall_time(self):
        results = {}
        for cores in (2, 8):
            module = prepare(DOALL_SOURCE, "doall")
            machine = ParallelMachine(module, num_cores=cores)
            machine.run()
            execution = [e for e in machine.executions if e.kind == "doall"][0]
            results[cores] = execution.parallel_cycles
        assert results[8] < results[2]

    def test_single_core_close_to_sequential(self):
        baseline = Interpreter(compile_source(DOALL_SOURCE)).run()
        module = prepare(DOALL_SOURCE, "doall")
        machine = ParallelMachine(module, num_cores=1)
        result = machine.run()
        # Overheads only: within 25% of sequential.
        assert result.cycles < baseline.cycles * 1.25

    def test_cores_knob_written_to_global(self):
        module = prepare(DOALL_SOURCE, "doall", cores=12)
        machine = ParallelMachine(module, num_cores=3)
        result = machine.run()
        execution = [e for e in machine.executions if e.kind == "doall"][0]
        assert execution.num_cores == 3
        baseline = Interpreter(compile_source(DOALL_SOURCE)).run()
        assert outputs_match(result.output, baseline.output)


class TestHelixModel:
    HISTOGRAM = """
int hist[16];
int main() {
  int i; int c = 0;
  for (i = 0; i < 600; i = i + 1) {
    int b = (i * 11 + 3) % 16;
    int w = (i * i) % 53;
    hist[b] = hist[b] + 1;
    c = c + w;
  }
  print_int(c);
  print_int(hist[2]);
  return c;
}
"""

    def test_in_order_semantics(self):
        baseline = Interpreter(compile_source(self.HISTOGRAM)).run()
        module = prepare(self.HISTOGRAM, "helix")
        result = ParallelMachine(module, num_cores=6).run()
        assert outputs_match(result.output, baseline.output)

    def test_sequential_segments_recorded(self):
        module = prepare(self.HISTOGRAM, "helix")
        machine = ParallelMachine(module, num_cores=6)
        machine.run()
        execution = [e for e in machine.executions if e.kind == "helix"][0]
        # The histogram segment serializes; speedup exists but is partial.
        assert execution.parallel_cycles < execution.sequential_cycles

    def test_latency_sensitivity(self):
        from repro.core.architecture import ArchitectureDescription

        wall = {}
        for latency in (10, 200):
            module = prepare(self.HISTOGRAM, "helix")
            arch = ArchitectureDescription(12, default_latency=latency)
            machine = ParallelMachine(module, architecture=arch, num_cores=6)
            machine.run()
            execution = [e for e in machine.executions if e.kind == "helix"][0]
            wall[latency] = execution.parallel_cycles
        # Slower interconnect -> longer sequential-segment chain.
        assert wall[200] > wall[10]


class TestDswpModel:
    PIPELINE = """
int main() {
  int i; int s = 0;
  for (i = 0; i < 500; i = i + 1) {
    int x = (i * 17 + 3) % 101;
    int y = (x * x + 9) % 97;
    s = s + y;
  }
  print_int(s);
  return s;
}
"""

    def test_pipeline_semantics(self):
        baseline = Interpreter(compile_source(self.PIPELINE)).run()
        module = prepare(self.PIPELINE, "dswp")
        result = ParallelMachine(module).run()
        assert outputs_match(result.output, baseline.output)

    def test_wall_time_bounded_by_slowest_stage(self):
        module = prepare(self.PIPELINE, "dswp")
        machine = ParallelMachine(module)
        machine.run()
        execution = [e for e in machine.executions if e.kind == "dswp"][0]
        assert execution.parallel_cycles < execution.sequential_cycles


class TestBaseInterpreterFallback:
    def test_parallel_intrinsics_work_without_machine(self):
        """The plain interpreter gives sequential reference semantics."""
        baseline = Interpreter(compile_source(DOALL_SOURCE)).run()
        module = prepare(DOALL_SOURCE, "doall")
        result = Interpreter(module).run()
        assert result.trapped is None
        assert outputs_match(result.output, baseline.output)
