"""End-to-end daemon tests over real HTTP with real worker processes.

This is where the fault-injection stress lives: injected ``serve_kill``
faults genuinely ``os._exit`` a supervised worker mid-request, and the
assertions are the ISSUE's acceptance criteria — the affected request
returns a structured error referencing a crash bundle, the daemon keeps
serving, and a replacement worker picks the session back up.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.serve.daemon import create_server, serve_forever
from repro.serve.resilience import RetryPolicy
from repro.workloads import registry

pytestmark = pytest.mark.timeout(300)

#: A program slow enough (tens of millions of reference-interpreter
#: steps) to blow any sub-second deadline, for the deadline-kill test.
SLOW_SOURCE = """
int main() {
  int i = 0;
  int s = 0;
  while (i < 30000000) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
"""


class Client:
    def __init__(self, server):
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@contextmanager
def serving(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("deadline_s", 60.0)
    server = create_server(port=0, **kwargs)
    thread = threading.Thread(
        target=serve_forever, args=(server,), daemon=True
    )
    thread.start()
    try:
        yield Client(server), server
    finally:
        server.shutdown()
        thread.join(timeout=30)


def _compile(client, session="s", name="m", source=None):
    status, body = client.post("/compile", {
        "session": session, "name": name,
        "source": source if source is not None
        else registry.get("crc32").source,
    })
    assert status == 200, body
    return body


class TestLifecycle:
    def test_compile_run_check_parallelize_and_warm_reuse(self, tmp_path):
        with serving(crash_dir=str(tmp_path)) as (client, _server):
            _compile(client)
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["ok"]
            assert body["result"]["exit_code"] == 0
            assert body["result"]["warm"] is False

            # Same session, same worker: caches must be warm now.
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200
            assert body["result"]["warm"] is True
            assert body["meta"]["engine_compiles"] == 0

            status, body = client.post("/parallelize", {
                "session": "s", "name": "m", "technique": "doall",
            })
            assert status == 200
            assert body["result"]["parallelized"] >= 1

            status, body = client.post("/check", {"session": "s", "name": "m"})
            assert status == 200
            assert body["result"]["errors"] == 0

    def test_healthz_stats_and_routing(self):
        with serving() as (client, _server):
            status, health = client.get("/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["workers_alive"] == 1

            status, stats = client.get("/stats")
            assert status == 200
            assert stats["serve"]["requests"] == 0
            assert stats["workers"][0]["alive"] is True
            assert "perf_counters" in stats

            assert client.get("/nope")[0] == 404
            assert client.post("/nope", {})[0] == 404

    def test_bad_requests_are_rejected_at_the_front_door(self):
        with serving() as (client, server):
            status, body = client.post("/compile", {"name": "m"})
            assert status == 400
            assert body["error"]["kind"] == "ProtocolError"

            request = urllib.request.Request(
                client.base + "/run", data=b"{not json",
                headers={"Content-Type": "application/json"}, method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    status = response.status
            except urllib.error.HTTPError as error:
                status, body = error.code, json.loads(error.read())
            assert status == 400
            assert body["error"]["kind"] == "BadRequest"
            # Neither bad request consumed a worker.
            assert server.supervisor.stats()["workers"][0]["jobs"] == 0


class TestFaultInjectionStress:
    """Seeded faults kill workers mid-request; the daemon survives."""

    def test_injected_kill_returns_structured_error_with_bundle(
        self, tmp_path
    ):
        with serving(crash_dir=str(tmp_path)) as (client, server):
            _compile(client)
            pid_before = server.supervisor.stats()["workers"][0]["pid"]

            status, body = client.post("/run", {
                "session": "s", "name": "m", "faults": "serve_kill:1",
            })
            assert status == 502
            error = body["error"]
            assert error["kind"] == "WorkerCrashed"
            assert error["scope"] == "service"
            assert "exit code 86" in error["message"]
            # The crash bundle referenced by the error exists on disk.
            bundle_dir = Path(error["bundle"])
            assert (bundle_dir / "report.json").is_file()
            report = json.loads((bundle_dir / "report.json").read_text())
            assert report["error"]["kind"] == "WorkerCrashed"
            assert report["error"]["fault"] == "serve_kill:1"

            # The daemon is still up, with a replacement worker.
            status, health = client.get("/healthz")
            assert status == 200 and health["status"] == "ok"
            pid_after = server.supervisor.stats()["workers"][0]["pid"]
            assert pid_after != pid_before

            # The replacement lost the session state (documented:
            # graceful cold restart) — recompiling re-warms it.
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 400  # structured, not a hang or a 500
            assert "compile it first" in body["error"]["message"]
            _compile(client)
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["result"]["exit_code"] == 0
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["result"]["warm"] is True

    def test_flaky_fault_is_retried_transparently(self):
        with serving() as (client, server):
            _compile(client)
            status, body = client.post("/run", {
                "session": "s", "name": "m", "faults": "serve_flaky:1",
            })
            assert status == 200 and body["ok"], body
            assert body["meta"]["attempts"] == 2
            assert server.supervisor.stats()["serve"]["retries"] == 1

    def test_deadline_kills_the_worker_and_serving_continues(self):
        with serving(deadline_s=60.0) as (client, server):
            _compile(client, name="slow", source=SLOW_SOURCE)
            started = time.monotonic()
            status, body = client.post("/run", {
                "session": "s", "name": "slow", "engine": "reference",
                "deadline_s": 1.0,
            })
            elapsed = time.monotonic() - started
            assert status == 504
            assert body["error"]["kind"] == "DeadlineExceeded"
            assert elapsed < 30.0  # killed, not waited out
            assert server.supervisor.stats()["serve"]["deadline_kills"] == 1
            # Follow-up on a fresh worker works.
            _compile(client)
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["ok"]


class TestDegradation:
    def test_breaker_opens_and_serves_degraded(self):
        with serving(
            breaker_threshold=2,
            breaker_cooldown_s=3600.0,
            retry_policy=RetryPolicy(max_attempts=1),
        ) as (client, _server):
            _compile(client)
            # Two service-scope failures on (s, run) open the breaker.
            # (Distinct specs: a fired spec is consumed per worker.)
            for spec in ("serve_flaky:1", "serve_flaky:2"):
                status, body = client.post("/run", {
                    "session": "s", "name": "m", "faults": spec,
                })
                assert status == 503, body
                assert body["error"]["kind"] == "TransientServeError"
            # Third request: degraded to the reference walker, not failed.
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["ok"]
            assert body["meta"]["degraded"] == "reference"
            assert body["result"]["engine"] == "reference"
            # compile has no degraded mode: the base capability still
            # works because its (session, op) breaker is separate.
            status, body = client.post("/compile", {
                "session": "s", "name": "m2",
                "source": registry.get("crc32").source,
            })
            assert status == 200

    def test_half_open_probe_recloses_the_breaker(self):
        with serving(
            breaker_threshold=1,
            breaker_cooldown_s=0.2,
            retry_policy=RetryPolicy(max_attempts=1),
        ) as (client, _server):
            _compile(client)
            status, body = client.post("/run", {
                "session": "s", "name": "m", "faults": "serve_flaky:1",
            })
            assert not body["ok"]
            time.sleep(0.3)
            # Cooldown elapsed: this is the half-open full-path probe.
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200
            assert body["meta"]["degraded"] is None
            # Probe succeeded: the breaker is closed again.
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["meta"]["degraded"] is None

    def test_request_errors_do_not_trip_the_breaker(self):
        with serving(breaker_threshold=2) as (client, _server):
            _compile(client)
            # Client mistakes, repeated beyond the threshold...
            for _ in range(4):
                status, body = client.post("/run", {
                    "session": "s", "name": "m", "entry": "nope",
                })
                assert status == 400
            # ...must not degrade a correct request.
            status, body = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200 and body["meta"]["degraded"] is None


class TestShutdown:
    def test_shutdown_leaves_no_orphan_workers(self):
        server = create_server(port=0, workers=2)
        thread = threading.Thread(
            target=serve_forever, args=(server,), daemon=True
        )
        thread.start()
        client = Client(server)
        _compile(client)
        pids = [w["pid"] for w in server.supervisor.stats()["workers"]]
        assert all(pids)

        status, body = client.post("/shutdown", {})
        assert status == 200 and body["ok"]
        thread.join(timeout=30)
        assert not thread.is_alive()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(_pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        for pid in pids:
            assert not _pid_alive(pid), f"orphan worker pid {pid}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True
