"""Supervised workers: death, deadlines, and order preservation.

The abrupt-death tests use ``os._exit`` inside the worker — the closest
userspace stand-in for an OOM kill: no exception, no cleanup, no reply.
They must run only inside a worker process, never in-process.
"""

import multiprocessing
import os
import time

import pytest

from repro.serve.pool import (
    TaskResult,
    Worker,
    WorkerCrashed,
    WorkerTimeout,
    describe_exit,
    supervised_map,
)

pytestmark = pytest.mark.timeout(120)

#: The monkeypatch-based tests rely on fork inheritance (the patched
#: function is a closure, which spawn could not pickle).
_fork_only = pytest.mark.skipif(
    (os.environ.get("NOELLE_MP_START") or multiprocessing.get_start_method())
    != "fork",
    reason="requires the fork start method",
)


# -- runners (module level so they survive any start method) -------------------

def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


def _exit_on_13(x):
    if x == 13:
        os._exit(86)  # abrupt death: no exception, no reply
    return x


def _sleep_on_5(x):
    if x == 5:
        time.sleep(60.0)
    return x


class TestSupervisedMap:
    def test_empty(self):
        assert supervised_map(_square, [], jobs=4) == []

    def test_order_preserved(self):
        results = supervised_map(_square, list(range(20)), jobs=4)
        assert [r.index for r in results] == list(range(20))
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [x * x for x in range(20)]

    def test_runner_exception_is_per_item(self):
        results = supervised_map(_fail_on_odd, list(range(6)), jobs=2)
        for result in results:
            if result.index % 2:
                assert not result.ok
                assert result.error["kind"] == "ValueError"
                assert f"odd input {result.index}" in result.error["message"]
            else:
                assert result.ok
                assert result.value == result.index

    def test_abrupt_worker_death_costs_only_its_item(self):
        items = list(range(12)) + [13] + list(range(20, 26))
        results = supervised_map(_exit_on_13, items, jobs=3)
        assert len(results) == len(items)
        by_item = {item: r for item, r in zip(items, results)}
        dead = by_item[13]
        assert not dead.ok
        assert dead.error["kind"] == "WorkerCrashed"
        assert dead.error["scope"] == "service"
        assert "exit code 86" in dead.error["message"]
        for item, result in by_item.items():
            if item != 13:
                assert result.ok, f"item {item}: {result.error}"
                assert result.value == item

    def test_task_deadline_kills_the_worker_not_the_batch(self):
        items = [0, 1, 5, 3]
        results = supervised_map(_sleep_on_5, items, jobs=2,
                                 task_timeout_s=1.0)
        by_item = {item: r for item, r in zip(items, results)}
        assert not by_item[5].ok
        assert by_item[5].error["kind"] == "DeadlineExceeded"
        for item in (0, 1, 3):
            assert by_item[item].ok

    def test_jobs_larger_than_items(self):
        results = supervised_map(_square, [3], jobs=16)
        assert len(results) == 1 and results[0].value == 9


class TestWorker:
    def test_round_trip(self):
        worker = Worker(_square, name="t")
        try:
            worker.submit(7)
            status, value = worker.recv(timeout=30.0)
            assert (status, value) == ("ok", 49)
            assert worker.jobs == 1
        finally:
            worker.stop()
        assert not worker.alive

    def test_runner_error_comes_back_structured(self):
        worker = Worker(_fail_on_odd, name="t")
        try:
            worker.submit(3)
            status, record = worker.recv(timeout=30.0)
            assert status == "error"
            assert record["kind"] == "ValueError"
            assert record["retryable"] is False
        finally:
            worker.stop()

    def test_death_mid_request_raises_worker_crashed(self):
        worker = Worker(_exit_on_13, name="t")
        try:
            worker.submit(13)
            with pytest.raises(WorkerCrashed) as excinfo:
                worker.recv(timeout=30.0)
            assert excinfo.value.exitcode == 86
        finally:
            worker.stop()

    def test_timeout_raises_without_killing(self):
        worker = Worker(_sleep_on_5, name="t")
        try:
            worker.submit(5)
            with pytest.raises(WorkerTimeout):
                worker.recv(timeout=0.2)
            assert worker.alive  # the policy decision to kill is the caller's
        finally:
            worker.kill()
        assert not worker.alive

    def test_stop_is_idempotent_on_dead_worker(self):
        worker = Worker(_square, name="t")
        worker.kill()
        worker.stop()  # must not raise
        assert not worker.alive


class TestDescribeExit:
    def test_signals_and_codes(self):
        assert describe_exit(0) == "exit code 0"
        assert describe_exit(86) == "exit code 86"
        assert "SIGKILL" in describe_exit(-9)
        assert describe_exit(None) == "exit status unknown"


class TestHardenedHarness:
    """run_corpus(jobs=N) / fig5_speedups(jobs=N) never hang on death."""

    def test_run_corpus_parallel_matches_sequential(self):
        from repro.testing.corpus import build_corpus
        from repro.testing.harness import ToolConfig, run_corpus

        tests = build_corpus()[:3]
        configs = [ToolConfig("licm", ["licm"])]
        parallel = run_corpus(configs, tests=tests, jobs=3)
        sequential = run_corpus(configs, tests=tests)
        assert [(o.test.name, o.passed) for o in parallel] == [
            (o.test.name, o.passed) for o in sequential
        ]
        assert all(o.passed for o in parallel)

    @_fork_only
    def test_run_corpus_survives_worker_death(self, monkeypatch):
        import repro.testing.harness as harness

        tests = harness.build_corpus()[:3]
        configs = [harness.ToolConfig("plain", [])]
        victim = tests[1].name
        monkeypatch.setattr(
            harness, "_run_pair", _make_pair_killer(victim)
        )
        outcomes = harness.run_corpus(configs, tests=tests, jobs=2)
        assert len(outcomes) == 3
        by_name = {o.test.name: o for o in outcomes}
        assert not by_name[victim].passed
        assert "WorkerCrashed" in by_name[victim].detail
        for test in tests:
            if test.name != victim:
                assert by_name[test.name].passed

    @_fork_only
    def test_fig5_speedups_surfaces_dead_rows(self, monkeypatch):
        import repro.experiments.speedups as speedups
        from repro.workloads import registry

        workloads = registry.suite("mibench")[:2]
        victim = workloads[0].name
        monkeypatch.setattr(
            speedups, "_fig5_row", _make_row_killer(victim)
        )
        rows = speedups.fig5_speedups(
            workloads, num_cores=4, techniques=("doall",), jobs=2
        )
        assert len(rows) == 2
        assert rows[0]["benchmark"] == victim
        assert rows[0]["error"]["kind"] == "WorkerCrashed"
        assert "doall" in rows[1] and rows[1]["doall"] > 0


def _make_pair_killer(victim_name):
    from repro.testing.harness import run_micro_test

    def killer(pair):
        test, config = pair
        if test.name == victim_name:
            os._exit(86)
        return run_micro_test(test, config)

    return killer


def _make_row_killer(victim_name):
    from repro.experiments.speedups import _fig5_row as real_row

    def killer(task):
        if task[0].name == victim_name:
            os._exit(86)
        return real_row(task)

    return killer
