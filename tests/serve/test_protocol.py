"""The serve wire protocol: validation, error records, exit codes."""

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    EXIT_ENTRY_NOT_FOUND,
    EXIT_STEP_LIMIT,
    EXIT_TRAP,
    ProtocolError,
    TransientServeError,
    error_record,
    service_error,
    status_for_error,
    trap_exit_code,
    validate_request,
)


class TestValidateRequest:
    def test_minimal_run(self):
        request = validate_request({"op": "run", "ir": "x"})
        assert request["op"] == "run"
        assert request["session"] == "default"

    def test_path_op_is_injected(self):
        request = validate_request({"name": "m"}, op="run")
        assert request["op"] == "run"

    def test_body_op_wins_over_path_default(self):
        request = validate_request({"op": "check", "name": "m"}, op="run")
        assert request["op"] == "check"

    def test_not_a_dict(self):
        with pytest.raises(ProtocolError):
            validate_request(["nope"])

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "transmogrify"})

    def test_compile_needs_name(self):
        with pytest.raises(ProtocolError, match="name"):
            validate_request({"op": "compile", "source": "s"})

    def test_compile_needs_exactly_one_input(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            validate_request({"op": "compile", "name": "m"})
        with pytest.raises(ProtocolError, match="exactly one"):
            validate_request(
                {"op": "compile", "name": "m", "source": "s", "ir": "i"}
            )

    def test_run_needs_name_or_ir(self):
        with pytest.raises(ProtocolError, match="name.*or inline"):
            validate_request({"op": "run"})

    def test_deadline_bounds(self):
        validate_request({"op": "run", "name": "m", "deadline_s": 1.5})
        with pytest.raises(ProtocolError, match="deadline_s"):
            validate_request({"op": "run", "name": "m", "deadline_s": 0})
        with pytest.raises(ProtocolError, match="deadline_s"):
            validate_request({"op": "run", "name": "m", "deadline_s": 1e9})
        with pytest.raises(ProtocolError, match="deadline_s"):
            validate_request({"op": "run", "name": "m", "deadline_s": True})

    def test_technique_default_and_validation(self):
        request = validate_request({"op": "parallelize", "name": "m"})
        assert request["technique"] == "doall"
        with pytest.raises(ProtocolError, match="technique"):
            validate_request(
                {"op": "parallelize", "name": "m", "technique": "magic"}
            )

    def test_engine_validation(self):
        with pytest.raises(ProtocolError, match="engine"):
            validate_request({"op": "run", "name": "m", "engine": "jit"})

    def test_args_must_be_numbers(self):
        validate_request({"op": "run", "name": "m", "args": [1, 2.5]})
        with pytest.raises(ProtocolError, match="args"):
            validate_request({"op": "run", "name": "m", "args": ["x"]})

    def test_int_fields(self):
        with pytest.raises(ProtocolError, match="cores"):
            validate_request({"op": "run", "name": "m", "cores": 0})
        with pytest.raises(ProtocolError, match="step_limit"):
            validate_request({"op": "run", "name": "m", "step_limit": "big"})

    def test_session_must_be_nonempty_string(self):
        with pytest.raises(ProtocolError, match="session"):
            validate_request({"op": "run", "name": "m", "session": ""})


class TestErrorRecord:
    def test_shape(self):
        try:
            raise ValueError("boom")
        except ValueError as error:
            record = error_record(error)
        assert record["kind"] == "ValueError"
        assert record["message"] == "boom"
        assert record["scope"] == "request"
        assert record["retryable"] is False
        assert "boom" in record["traceback"]

    def test_transient_is_retryable_and_service_scope(self):
        # Even when recorded with the default request scope (the worker
        # loop does), a transient failure is the service layer's fault.
        record = error_record(TransientServeError("blip"))
        assert record["retryable"] is True
        assert record["scope"] == "service"

    def test_service_error_builder(self):
        record = service_error("DeadlineExceeded", "too slow", exitcode=-9)
        assert record["scope"] == "service"
        assert record["exitcode"] == -9

    def test_no_traceback_when_disabled(self):
        record = error_record(ValueError("x"), include_traceback=False)
        assert "traceback" not in record


class TestStatusMapping:
    def test_client_errors_are_400(self):
        assert status_for_error({"kind": "ProtocolError"}) == 400
        assert status_for_error({"kind": "EntryNotFoundError"}) == 400

    def test_service_errors(self):
        assert status_for_error({"kind": "DeadlineExceeded"}) == 504
        assert status_for_error({"kind": "WorkerCrashed"}) == 502
        assert status_for_error({"kind": "WorkerUnavailable"}) == 503
        assert status_for_error({"kind": "CircuitOpen"}) == 503

    def test_unknown_is_500(self):
        assert status_for_error({"kind": "Weird"}) == 500


class TestExitCodes:
    def test_documented_taxonomy_is_stable(self):
        # These values are documented in README/DESIGN and parsed by
        # scripts; changing them is a breaking change.
        assert EXIT_TRAP == 3
        assert EXIT_STEP_LIMIT == 4
        assert EXIT_ENTRY_NOT_FOUND == 5
        assert protocol.WORKER_KILL_EXIT == 86

    def test_trap_exit_code(self):
        assert trap_exit_code(None) == 0
        assert trap_exit_code("StepLimitExceeded") == EXIT_STEP_LIMIT
        assert trap_exit_code("MemoryTrap") == EXIT_TRAP
