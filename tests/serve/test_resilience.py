"""Retry policy and circuit breaker state machine."""

import pytest

from repro.serve.resilience import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_retries_only_retryable_errors(self):
        policy = RetryPolicy(max_attempts=3)
        retryable = {"retryable": True}
        fatal = {"retryable": False}
        assert policy.should_retry(1, retryable)
        assert policy.should_retry(2, retryable)
        assert not policy.should_retry(3, retryable)  # budget exhausted
        assert not policy.should_retry(1, fatal)

    def test_single_attempt_disables_retry(self):
        policy = RetryPolicy(max_attempts=1)
        assert not policy.should_retry(1, {"retryable": True})

    def test_backoff_without_jitter_is_exact_capped_exponential(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=0.5, jitter=0.0, max_attempts=10
        )
        delays = [policy.delay_s(attempt) for attempt in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band_and_is_seeded(self):
        a = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=7)
        b = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=7)
        delays_a = [a.delay_s(n) for n in range(1, 20)]
        delays_b = [b.delay_s(n) for n in range(1, 20)]
        assert delays_a == delays_b  # deterministic under a seed
        for attempt, delay in enumerate(delays_a, start=1):
            base = min(0.1 * 2.0 ** (attempt - 1), 2.0)
            assert 0.5 * base <= delay <= 1.5 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0,
                                 clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # concurrent requests stay degraded

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, cooldown_s=1.0,
                                 clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed: snap back open
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_count == 2

    def test_snapshot(self):
        breaker = CircuitBreaker(clock=FakeClock())
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": "closed",
            "consecutive_failures": 0,
            "opened_count": 0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
