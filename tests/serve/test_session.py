"""Worker-side session executor, run in-process.

These tests call :func:`execute_job` directly (no worker process), so
they must never arm ``serve_kill`` — that site ``os._exit``'s the
current process.  Kill-fault behaviour is covered end-to-end by the
daemon tests, where the exiting process is a supervised worker.
"""

import pytest

from repro.serve import session as session_mod
from repro.serve.protocol import (
    EXIT_STEP_LIMIT,
    ProtocolError,
    TransientServeError,
)
from repro.serve.session import configure_worker, execute_job
from repro.workloads import registry


@pytest.fixture(autouse=True)
def fresh_worker_state(monkeypatch):
    # In-process tests must never inherit a NOELLE_FAULTS service plan.
    monkeypatch.delenv("NOELLE_FAULTS", raising=False)
    configure_worker(arm_env_faults=False)
    yield
    configure_worker(arm_env_faults=False)


@pytest.fixture(scope="module")
def crc_source():
    return registry.get("crc32").source


def _compile(name="m1", session="s", source=None):
    return execute_job({
        "op": "compile", "session": session, "name": name,
        "source": source if source is not None
        else registry.get("crc32").source,
    })


class TestCompile:
    def test_cold_then_warm(self, crc_source):
        first = _compile(source=crc_source)
        assert first["result"]["warm"] is False
        assert first["result"]["functions"] >= 1
        # Identical content: the resident module (and its caches) stays.
        second = _compile(source=crc_source)
        assert second["result"]["warm"] is True

    def test_changed_content_recompiles(self, crc_source):
        _compile(source=crc_source)
        changed = _compile(source=crc_source + "\n")
        assert changed["result"]["warm"] is False

    def test_sessions_are_isolated(self, crc_source):
        _compile(session="a", source=crc_source)
        with pytest.raises(ProtocolError, match="compile it first"):
            execute_job({"op": "run", "session": "b", "name": "m1"})


class TestRun:
    def test_named_module_runs_and_warms(self, crc_source):
        _compile(source=crc_source)
        first = execute_job({"op": "run", "session": "s", "name": "m1"})
        assert first["result"]["trap_kind"] is None
        assert first["result"]["exit_code"] == 0
        assert first["result"]["warm"] is False
        second = execute_job({"op": "run", "session": "s", "name": "m1"})
        assert second["result"]["warm"] is True
        # The compiled-code cache inside the resident module was reused.
        assert second["meta"]["engine_compiles"] == 0

    def test_missing_entry(self, crc_source):
        _compile(source=crc_source)
        with pytest.raises(Exception) as excinfo:
            execute_job({
                "op": "run", "session": "s", "name": "m1", "entry": "nope",
            })
        assert type(excinfo.value).__name__ == "EntryNotFoundError"

    def test_step_limit_is_a_budget_kill_not_a_crash(self, crc_source):
        _compile(source=crc_source)
        reply = execute_job({
            "op": "run", "session": "s", "name": "m1", "step_limit": 5,
        })
        assert reply["result"]["trap_kind"] == "StepLimitExceeded"
        assert reply["result"]["exit_code"] == EXIT_STEP_LIMIT

    def test_degraded_mode_forces_reference_engine(self, crc_source):
        _compile(source=crc_source)
        reply = execute_job({
            "op": "run", "session": "s", "name": "m1", "mode": "reference",
        })
        assert reply["result"]["engine"] == "reference"
        assert reply["result"]["degraded"] == "reference"


class TestParallelizeAndCheck:
    def test_parallelize_warm_module(self, crc_source):
        _compile(source=crc_source)
        reply = execute_job({
            "op": "parallelize", "session": "s", "name": "m1",
            "technique": "doall", "cores": 4,
        })
        assert reply["result"]["parallelized"] >= 1
        assert reply["result"]["degraded"] is None

    def test_parallelize_degraded_is_a_no_op(self, crc_source):
        _compile(source=crc_source)
        reply = execute_job({
            "op": "parallelize", "session": "s", "name": "m1",
            "technique": "doall", "mode": "sequential", "emit_ir": True,
        })
        assert reply["result"]["parallelized"] == 0
        assert reply["result"]["degraded"] == "sequential"
        assert "define" in reply["result"]["ir"]

    def test_check_clean_module(self, crc_source):
        _compile(source=crc_source)
        reply = execute_job({"op": "check", "session": "s", "name": "m1"})
        assert reply["result"]["ok"] is True
        assert reply["result"]["errors"] == 0

    def test_check_advisory_never_fails(self, crc_source):
        _compile(source=crc_source)
        reply = execute_job({
            "op": "check", "session": "s", "name": "m1", "mode": "advisory",
        })
        assert reply["result"]["ok"] is True
        assert reply["result"]["degraded"] == "advisory"


class TestFaultArming:
    def test_flaky_fault_raises_transient(self, crc_source):
        _compile(source=crc_source)
        with pytest.raises(TransientServeError):
            execute_job({
                "op": "run", "session": "s", "name": "m1",
                "faults": "serve_flaky:1",
            })

    def test_fired_spec_is_consumed_so_a_retry_succeeds(self, crc_source):
        _compile(source=crc_source)
        job = {
            "op": "run", "session": "s", "name": "m1",
            "faults": "serve_flaky:1",
        }
        with pytest.raises(TransientServeError):
            execute_job(job)
        # The retried request carries the same spec; it must not re-arm.
        reply = execute_job(dict(job))
        assert reply["result"]["exit_code"] == 0

    def test_env_plan_for_analysis_site_is_not_armed_at_service_layer(
        self, monkeypatch, crc_source
    ):
        # CI's seeded plans target analysis sites; the service layer must
        # leave them to the pass manager's transactions, not fail requests.
        monkeypatch.setenv("NOELLE_FAULTS", "alias_query:1")
        configure_worker(arm_env_faults=True)
        assert session_mod._ENV_PLAN is None
        reply = _compile(source=crc_source)
        assert reply["result"]["functions"] >= 1

    def test_env_plan_for_serve_site_armed_only_first_generation(
        self, monkeypatch
    ):
        monkeypatch.setenv("NOELLE_FAULTS", "serve_flaky:1")
        configure_worker(arm_env_faults=True)
        assert session_mod._ENV_PLAN is not None
        # A replacement worker (generation > 0) must not re-arm it.
        configure_worker(arm_env_faults=False)
        assert session_mod._ENV_PLAN is None


class TestMeta:
    def test_meta_shape(self, crc_source):
        reply = _compile(source=crc_source)
        meta = reply["meta"]
        assert meta["op"] == "compile"
        assert meta["session"] == "s"
        assert meta["resident_modules"] == 1
        assert meta["seconds"] >= 0.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            execute_job({"op": "nope", "session": "s"})
