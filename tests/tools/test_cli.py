"""End-to-end tests for the repro-noelle command-line interface."""

import os

import pytest

from repro.robust.faults import enabled_in_env as faults_enabled
from repro.tools.cli import main

DEMO_SOURCE = """
int data[300];
int main() {
  int i; int s = 0;
  for (i = 0; i < 300; i = i + 1) { data[i] = i * 5 % 23; }
  for (i = 0; i < 300; i = i + 1) { s = s + data[i]; }
  print_int(s);
  return s;
}
"""

LIB_SOURCE = """
int twice(int x) { return x * 2; }
int unused(int x) { return x - 1; }
"""


@pytest.fixture
def demo_files(tmp_path):
    source = tmp_path / "demo.mc"
    source.write_text(DEMO_SOURCE)
    ir_file = tmp_path / "demo.ir"
    assert main(["whole-ir", str(source), "-o", str(ir_file)]) == 0
    return source, ir_file, tmp_path


class TestWholeIR:
    def test_compile_single(self, demo_files):
        _, ir_file, _ = demo_files
        assert ir_file.exists()
        assert "define @main" in ir_file.read_text()

    def test_compile_multiple(self, tmp_path):
        a = tmp_path / "a.mc"
        a.write_text("int twice(int x);\nint main() { return twice(21); }")
        b = tmp_path / "b.mc"
        b.write_text(LIB_SOURCE)
        out = tmp_path / "linked.ir"
        assert main(["whole-ir", str(a), str(b), "-o", str(out)]) == 0
        assert "define @twice" in out.read_text()

    def test_accepts_ir_inputs(self, demo_files, tmp_path):
        _, ir_file, _ = demo_files
        out = tmp_path / "relinked.ir"
        assert main(["whole-ir", str(ir_file), "-o", str(out)]) == 0


class TestRun:
    def test_run_prints_output(self, demo_files, capsys):
        _, ir_file, _ = demo_files
        assert main(["run", str(ir_file)]) == 0
        captured = capsys.readouterr()
        expected = sum((i * 5) % 23 for i in range(300))
        assert str(expected) in captured.out


class TestParallelize:
    @pytest.mark.parametrize("technique", ["doall", "helix", "dswp"])
    def test_parallelize_roundtrip(self, demo_files, tmp_path, technique, capsys):
        _, ir_file, _ = demo_files
        out = tmp_path / f"{technique}.ir"
        assert main([
            "parallelize", str(ir_file), "--technique", technique,
            "--cores", "6", "-o", str(out),
        ]) == 0
        # The parallelized IR parses, verifies, and produces the same output.
        capsys.readouterr()
        assert main(["run", str(out), "--cores", "6"]) == 0
        captured = capsys.readouterr()
        expected = sum((i * 5) % 23 for i in range(300))
        assert str(expected) in captured.out


class TestOptimizers:
    def test_licm(self, tmp_path, capsys):
        source = tmp_path / "inv.mc"
        source.write_text("""
int g = 6;
int out[50];
int main() {
  int i;
  for (i = 0; i < 50; i = i + 1) {
    int k = g * 3;
    out[i] = k + i;
  }
  print_int(out[10]);
  return out[10];
}
""")
        ir_file = tmp_path / "inv.ir"
        assert main(["whole-ir", str(source), "-o", str(ir_file)]) == 0
        opt_file = tmp_path / "inv.opt.ir"
        assert main(["licm", str(ir_file), "-o", str(opt_file)]) == 0
        capsys.readouterr()
        assert main(["run", str(opt_file)]) == 0
        assert "28" in capsys.readouterr().out

    def test_dead(self, tmp_path, capsys):
        source = tmp_path / "dead.mc"
        source.write_text(
            "int used(int x) { return x + 1; }\n"
            "int unused(int x) { return x * 9; }\n"
            "int main() { print_int(used(1)); return 0; }"
        )
        ir_file = tmp_path / "dead.ir"
        assert main(["whole-ir", str(source), "-o", str(ir_file)]) == 0
        slim = tmp_path / "slim.ir"
        assert main(["dead", str(ir_file), "-o", str(slim)]) == 0
        text = slim.read_text()
        if not faults_enabled():
            # Under NOELLE_FAULTS the dead pass may roll back; the output
            # must still be valid IR containing the live code.
            assert "@unused" not in text
        assert "@used" in text


class TestReports:
    def test_report(self, demo_files, capsys):
        _, ir_file, _ = demo_files
        assert main(["report", str(ir_file)]) == 0
        out = capsys.readouterr().out
        assert "PDG:" in out
        assert "doall=True" in out

    def test_profile(self, demo_files, capsys):
        _, ir_file, _ = demo_files
        assert main(["profile", str(ir_file)]) == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "hotness" in out


class TestAnalyze:
    SOURCE = """
int a[32];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { a[i + 3] = a[i] + 1; }
  return a[12];
}
"""

    def analyze(self, tmp_path, capsys, *extra):
        import json

        source = tmp_path / "dep.mc"
        source.write_text(self.SOURCE)
        assert main(["analyze", str(source), *extra]) == 0
        return json.loads(capsys.readouterr().out)

    def test_loops_json_has_scev_facts(self, tmp_path, capsys):
        report = self.analyze(tmp_path, capsys, "--loops")
        loop = next(
            l for l in report["loops"] if l["function"] == "main"
        )
        assert loop["trip_count"] == 10
        governing = [
            iv for iv in loop["induction_variables"] if iv["governing"]
        ]
        assert governing and governing[0]["start"] == 0
        assert governing[0]["step"] == 1

    def test_dependence_verdicts_reference_accesses(self, tmp_path, capsys):
        report = self.analyze(tmp_path, capsys)
        loop = next(
            l for l in report["loops"] if l["function"] == "main"
        )
        accesses = loop["memory_accesses"]
        assert any("1*i" in (a["affine"] or "") for a in accesses)
        by_kind = {a["kind"]: a["id"] for a in accesses}
        verdicts = {
            (t["a"], t["b"]): t for t in loop["dependence_tests"]
        }
        # Load a[i] at iteration j reads what the store a[i+3] wrote
        # three iterations earlier, hence distance -3 load->store.
        pair = verdicts[(by_kind["load"], by_kind["store"])]
        assert pair["verdict"] == "dependent"
        assert pair["distance"] == -3

    def test_workload_name_resolves(self, capsys):
        import json

        assert main(["analyze", "crc32", "--loops"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert any(l["trip_count"] == 256 for l in report["loops"])


class TestCheck:
    def test_clean_ir_exits_zero(self, demo_files, capsys):
        _, ir_file, _ = demo_files
        assert main(["check", str(ir_file)]) == 0
        err = capsys.readouterr().err
        assert "check: 0 error(s)" in err
        assert "(clean)" in err

    def test_mc_input_and_checker_subset(self, demo_files, capsys):
        source, _, _ = demo_files
        assert main(["check", str(source), "--checkers", "lint"]) == 0

    def test_workload_name_resolves(self, capsys):
        assert main(["check", "lbm"]) == 0
        assert "check:" in capsys.readouterr().err

    def test_unknown_input_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="neither a file nor"):
            main(["check", "no-such-workload"])

    def test_parallelize_then_check(self, demo_files, capsys):
        if faults_enabled():
            pytest.skip("parallelization may roll back under NOELLE_FAULTS")
        _, ir_file, _ = demo_files
        assert main(
            ["check", str(ir_file), "--parallelize", "doall", "--cores", "4"]
        ) == 0

    def test_buggy_module_exits_nonzero(self, tmp_path, capsys):
        from repro.ir import print_module
        from tests.checks.fixtures import (
            build_helix_fixture,
            drop_sequential_segments,
        )

        module, noelle = build_helix_fixture()
        drop_sequential_segments(module, noelle)
        path = tmp_path / "buggy.ir"
        path.write_text(print_module(module))
        assert main(["check", str(path)]) == 1
        captured = capsys.readouterr()
        assert "error: [races]" in captured.out
        assert "check: " in captured.err

    def test_oracle_flag_reports_dynamic_races(self, tmp_path, capsys):
        from repro.ir import print_module
        from tests.checks.fixtures import (
            build_helix_fixture,
            drop_sequential_segments,
        )

        module, noelle = build_helix_fixture()
        drop_sequential_segments(module, noelle)
        path = tmp_path / "buggy.ir"
        path.write_text(print_module(module))
        assert main(["check", str(path), "--cores", "4", "--oracle"]) == 1
        captured = capsys.readouterr()
        assert "dynamic: helix region" in captured.out
        assert "dynamic race(s)" in captured.err


class TestRunExitCodes:
    """The documented failure taxonomy of ``repro-noelle run``."""

    def test_success_is_zero(self, demo_files):
        _, ir_file, _ = demo_files
        assert main(["run", str(ir_file)]) == 0

    def test_missing_entry_is_5(self, demo_files, capsys):
        from repro.serve.protocol import EXIT_ENTRY_NOT_FOUND

        _, ir_file, _ = demo_files
        code = main(["run", str(ir_file), "--entry", "does_not_exist"])
        assert code == EXIT_ENTRY_NOT_FOUND
        captured = capsys.readouterr()
        assert "@does_not_exist" in captured.err
        assert "@main" in captured.err  # the available entries are listed

    def test_step_limit_is_4(self, demo_files, capsys):
        from repro.serve.protocol import EXIT_STEP_LIMIT

        _, ir_file, _ = demo_files
        code = main(["run", str(ir_file), "--step-limit", "10"])
        assert code == EXIT_STEP_LIMIT
        assert "STEP LIMIT" in capsys.readouterr().err

    def test_memory_trap_is_3(self, tmp_path, capsys):
        from repro.serve.protocol import EXIT_TRAP

        source = tmp_path / "oob.mc"
        source.write_text(
            "int data[4];\n"
            "int main() {\n"
            "  int i;\n"
            "  for (i = 0; i < 100; i = i + 1) { data[i] = i; }\n"
            "  return data[0];\n"
            "}\n"
        )
        ir_file = tmp_path / "oob.ir"
        assert main(["whole-ir", str(source), "-o", str(ir_file)]) == 0
        code = main(["run", str(ir_file)])
        assert code == EXIT_TRAP
        assert "TRAP" in capsys.readouterr().err

    def test_explicit_entry_runs_it(self, tmp_path, capsys):
        source = tmp_path / "lib.mc"
        source.write_text(
            "int helper() { print_int(42); return 7; }\n"
            "int main() { return 0; }\n"
        )
        ir_file = tmp_path / "lib.ir"
        assert main(["whole-ir", str(source), "-o", str(ir_file)]) == 0
        assert main(["run", str(ir_file), "--entry", "helper"]) == 0
        assert "42" in capsys.readouterr().out
