"""Tests for the noelle-* tools: whole-IR, PDG embedding, rm-lc-deps,
profiling pipeline, binary generation, and the full Figure 1 flow."""

from repro import ir
from repro.core import Noelle
from repro.core.pdg import PDG
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.robust.faults import enabled_in_env as faults_enabled
from repro.tools import (
    embed_pdg,
    has_embedded_pdg,
    helix_pipeline,
    load,
    load_embedded_pdg,
    make_binary,
    measure_architecture,
    meta_clean,
    meta_prof_embed,
    prof_coverage,
    remove_loop_carried_dependences,
    whole_ir_from_sources,
)
from tests.conftest import outputs_match


class TestWholeIR:
    def test_multiple_translation_units(self):
        main_src = "int helper(int x);\nint main() { return helper(20); }"
        lib_src = "int helper(int x) { return x + 22; }"
        module = whole_ir_from_sources([main_src, lib_src], ["-lm"])
        assert Interpreter(module).run().return_value == 42
        from repro.tools import link_options_of

        assert link_options_of(module) == ["-lm"]

    def test_single_unit(self):
        module = whole_ir_from_sources(["int main() { return 7; }"])
        assert Interpreter(module).run().return_value == 7


class TestPDGEmbedding:
    SOURCE = """
int cell = 0;
int main() {
  cell = 3;
  return cell + 1;
}
"""

    def test_roundtrip(self):
        module = compile_source(self.SOURCE)
        original = embed_pdg(module)
        assert has_embedded_pdg(module)
        restored = load_embedded_pdg(module)
        assert restored is not None
        assert restored.num_edges() == original.num_edges()
        assert restored.memory_queries == original.memory_queries
        # Edge multiset matches kind-for-kind.
        def signature(pdg):
            return sorted(
                (e.kind, e.data_kind or "", e.is_memory, e.is_must)
                for e in pdg.edges()
            )
        assert signature(restored) == signature(original)

    def test_load_uses_embedded_pdg(self):
        module = compile_source(self.SOURCE)
        embed_pdg(module)
        noelle = load(module)
        pdg = noelle.pdg()
        assert pdg.aa is None  # reconstructed, not recomputed

    def test_meta_clean_removes_embedding(self):
        module = compile_source(self.SOURCE)
        embed_pdg(module)
        meta_clean(module)
        assert not has_embedded_pdg(module)


class TestRmLcDependences:
    def test_promotes_global_accumulator(self):
        source = """
int total = 0;
int a[50];
int main() {
  int i;
  for (i = 0; i < 50; i = i + 1) { total = total + a[i] + i; }
  return total;
}
"""
        baseline = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        noelle = Noelle(module)
        promoted = remove_loop_carried_dependences(noelle)
        assert promoted == 1
        ir.verify_module(module)
        assert Interpreter(module).run().return_value == baseline.return_value
        # The loop is now reducible.
        loop = [l for l in Noelle(module).loops() if l.structure.depth() == 1][0]
        assert loop.reductions()

    def test_aliased_cell_not_promoted(self):
        source = """
int cells[10];
int main() {
  int i;
  int *p = cells;
  int *q = cells;
  for (i = 0; i < 10; i = i + 1) {
    *p = *p + 1;
    q[0] = q[0] * 2;
  }
  return cells[0];
}
"""
        baseline = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        remove_loop_carried_dependences(Noelle(module))
        assert Interpreter(module).run().return_value == baseline.return_value

    def test_observing_call_blocks_promotion(self):
        source = """
int total = 0;
int peek() { return total; }
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) {
    total = total + 1;
    s = s + peek();
  }
  return s;
}
"""
        baseline = Interpreter(compile_source(source)).run()
        module = compile_source(source)
        promoted = remove_loop_carried_dependences(Noelle(module))
        assert promoted == 0  # peek() reads the cell mid-loop
        assert Interpreter(module).run().return_value == baseline.return_value


class TestArchAndBinary:
    def test_measure_architecture(self):
        arch = measure_architecture(4, smt=2)
        assert arch.num_logical_cores == 8
        assert arch.latency(0, 1) > 0

    def test_binary_runs(self):
        module = whole_ir_from_sources(["int main() { print_int(5); return 5; }"])
        binary = make_binary(module)
        result = binary.run()
        assert result.output == [5]
        assert result.parallel_executions == []


class TestFigure1Pipeline:
    def test_end_to_end(self):
        main_src = """
int values[900];
void fill(int n);
int score(int v);
int total = 0;
int main() {
  int i;
  fill(900);
  for (i = 0; i < 900; i = i + 1) {
    total = total + score(values[i]);
  }
  print_int(total);
  return total;
}
"""
        lib_src = """
int values[900];
void fill(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { values[i] = (i * 31 + 7) % 64; }
}
int score(int v) { return (v * v + 5) % 113; }
"""
        sequential = whole_ir_from_sources([main_src, lib_src])
        baseline = Interpreter(sequential).run()

        module = helix_pipeline([main_src, lib_src], num_cores=8)
        binary = make_binary(module, num_cores=8)
        result = binary.run()
        assert result.trapped is None
        assert outputs_match(result.output, baseline.output)
        if not faults_enabled():
            # Under NOELLE_FAULTS a pipeline pass may (deliberately) roll
            # back, so only semantics is guaranteed — not the speedup.
            assert result.parallel_executions  # at least one parallel region
            assert baseline.cycles / result.cycles > 2.0  # a real speedup
