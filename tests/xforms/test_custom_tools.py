"""LICM, DEAD, CARAT, COOS, PRVJ, TIME, Perspective tests."""

import pytest

from repro import ir
from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.xforms import (
    CARAT,
    DOALL,
    LICM,
    CompilerTiming,
    DeadFunctionEliminator,
    Perspective,
    PRVJeeves,
    TimeSqueezer,
    timing_accuracy,
)
from tests.conftest import outputs_match


def run(module, **kwargs):
    result = Interpreter(module, **kwargs).run()
    assert result.trapped is None, result.trapped
    return result


class TestLICM:
    SOURCE = """
int factor = 5;
int a[100];
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) {
    int k = factor * 3 + 2;
    a[i] = i * k;
  }
  return a[50];
}
"""

    def test_hoists_and_preserves(self):
        baseline = run(compile_source(self.SOURCE))
        module = compile_source(self.SOURCE)
        hoisted = LICM(Noelle(module)).run()
        assert hoisted >= 2
        ir.verify_module(module)
        result = run(module)
        assert result.return_value == baseline.return_value
        assert result.cycles < baseline.cycles

    def test_hoists_more_than_llvm_single_pass(self):
        from repro.analysis.aa import BasicAliasAnalysis
        from repro.analysis.dominators import DominatorTree
        from repro.analysis.loopinfo import LoopInfo
        from repro.baselines.invariants_llvm import invariants_llvm

        module = compile_source(self.SOURCE)
        fn = module.get_function("main")
        dom = DominatorTree(fn)
        loop = LoopInfo(fn, dom).loops()[0]
        llvm_found = invariants_llvm(loop, dom, BasicAliasAnalysis())
        noelle = Noelle(compile_source(self.SOURCE))
        noelle_found = noelle.loops()[0].invariants.invariants()
        assert len(noelle_found) > len(llvm_found)

    def test_nested_loops_hoist_outward(self):
        source = """
int factor = 2;
int m[100];
int main() {
  int i; int j; int s = 0;
  for (i = 0; i < 10; i = i + 1) {
    for (j = 0; j < 10; j = j + 1) {
      int k = factor * 7;
      s = s + k + i;
    }
  }
  return s;
}
"""
        baseline = run(compile_source(source))
        module = compile_source(source)
        hoisted = LICM(Noelle(module)).run()
        assert hoisted >= 1
        assert run(module).return_value == baseline.return_value


class TestDEAD:
    SOURCE = """
int used_fn(int x) { return x + 1; }
int dead_leaf(int x) { return x - 1; }
int dead_caller(int x) { return dead_leaf(x) * 2; }
int main() { return used_fn(1); }
"""

    def test_removes_dead_functions(self):
        module = compile_source(self.SOURCE)
        removed = DeadFunctionEliminator(Noelle(module)).run()
        assert set(removed) == {"dead_leaf", "dead_caller"}
        assert run(module).return_value == 2

    def test_keeps_indirect_targets(self):
        source = """
int sel = 0;
int a() { return 1; }
int b() { return 2; }
int never_called(int x) { return x; }
int main() {
  int (*f)(void);
  if (sel) { f = a; } else { f = b; }
  return f();
}
"""
        module = compile_source(source)
        removed = DeadFunctionEliminator(Noelle(module)).run()
        assert set(removed) == {"never_called"}
        assert run(module).return_value == 2

    def test_size_reduction_measured(self):
        module = compile_source(self.SOURCE)
        before = module.num_instructions()
        DeadFunctionEliminator(Noelle(module)).run()
        assert module.num_instructions() < before


class TestCARAT:
    def test_guards_catch_overflow(self):
        source = """
int main() {
  int *p = (int *)malloc(8);
  int i;
  for (i = 0; i < 9; i = i + 1) { p[i] = i; }
  return p[0];
}
"""
        module = compile_source(source)
        stats = CARAT(Noelle(module)).run()
        assert stats.guards_inserted >= 1
        result = Interpreter(module).run()
        assert result.trapped is not None
        assert "CARAT" in result.trapped

    def test_safe_program_unaffected(self):
        source = """
int a[50];
int main() {
  int i; int s = 0;
  for (i = 0; i < 50; i = i + 1) { a[i] = i; s = s + a[i]; }
  return s;
}
"""
        baseline = run(compile_source(source))
        module = compile_source(source)
        stats = CARAT(Noelle(module)).run()
        result = run(module)
        assert result.return_value == baseline.return_value

    def test_constant_accesses_proven_safe(self):
        source = """
int a[10];
int main() { a[3] = 7; return a[3]; }
"""
        module = compile_source(source)
        stats = CARAT(Noelle(module)).run()
        assert stats.proven_safe == 2
        assert stats.guards_inserted == 0

    def test_range_guard_merging(self):
        source = """
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i = i + 1) { a[i] = i; }
  return a[9];
}
"""
        module = compile_source(source)
        stats = CARAT(Noelle(module)).run()
        assert stats.merged >= 1
        result = run(module)
        # One range guard executed, not 64 point guards.
        assert result.guard_count <= stats.guards_inserted
        assert result.return_value == 9


class TestCOOS:
    SOURCE = """
int work(int x) {
  int i; int s = x;
  for (i = 0; i < 50; i = i + 1) { s = (s * 3 + 1) % 1000; }
  return s;
}
int main() {
  int i; int total = 0;
  for (i = 0; i < 40; i = i + 1) { total = total + work(i); }
  return total;
}
"""

    def test_hooks_bound_gaps(self):
        baseline = run(compile_source(self.SOURCE))
        module = compile_source(self.SOURCE)
        inserted = CompilerTiming(Noelle(module), budget_cycles=500).run()
        assert inserted >= 1
        result = run(module)
        assert result.return_value == baseline.return_value
        accuracy = timing_accuracy(result.callback_cycles, result.cycles)
        assert accuracy["hooks"] > 0
        # Hooked max gap must be far below the unhooked one (whole run).
        assert accuracy["max_gap"] < baseline.cycles / 4

    def test_tighter_budget_more_hooks(self):
        loose_module = compile_source(self.SOURCE)
        CompilerTiming(Noelle(loose_module), budget_cycles=5000).run()
        loose = run(loose_module).callback_count
        tight_module = compile_source(self.SOURCE)
        CompilerTiming(Noelle(tight_module), budget_cycles=200).run()
        tight = run(tight_module).callback_count
        assert tight >= loose


class TestPRVJ:
    def test_low_demand_sites_get_fast_generator(self):
        source = """
int main() {
  int i; int s = 0;
  srand(5);
  for (i = 0; i < 300; i = i + 1) {
    s = s + rand() % 10;
  }
  return s;
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        noelle.run_profiler()
        baseline_cycles = Interpreter(compile_source(source)).run().cycles
        selected = PRVJeeves(noelle).run()
        assert selected, "no generator selected"
        assert "rand_lcg" in selected  # modulo-only use: fast generator
        result = Interpreter(module).run()
        assert result.cycles < baseline_cycles

    def test_high_demand_sites_keep_quality(self):
        source = """
double main() {
  int i; double acc = 0.0;
  srand(5);
  for (i = 0; i < 200; i = i + 1) {
    double x = (double)(rand() % 1000) * 0.001;
    acc = acc + sqrt(x + 0.1);
  }
  return acc;
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        noelle.run_profiler()
        selected = PRVJeeves(noelle).run()
        # Feeding sqrt demands the top-quality generator.
        assert selected.get("rand_mt", 0) >= 1 or not selected

    def test_cold_sites_untouched(self):
        source = """
int cold_path(int x) { if (x > 1000000) { return rand(); } return 0; }
int main() {
  int i; int s = 0;
  srand(1);
  for (i = 0; i < 200; i = i + 1) { s = s + rand() % 5; }
  return s + cold_path(3);
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        noelle.run_profiler()
        PRVJeeves(noelle, hotness_threshold=0.01).run()
        cold_fn = module.get_function("cold_path")
        cold_calls = [
            i.called_function().name
            for i in cold_fn.instructions()
            if isinstance(i, ir.Call)
        ]
        assert cold_calls == ["rand"]  # never executed: left alone


class TestTIME:
    SOURCE = """
int data[200];
int threshold = 90;
int main() {
  int i; int hits = 0;
  for (i = 0; i < 200; i = i + 1) { data[i] = (i * 37) % 100; }
  for (i = 0; i < 200; i = i + 1) {
    int deep = ((data[i] * 3 + 1) * 5 + 2) % 128;
    if (threshold < deep) { hits = hits + 1; }
  }
  return hits;
}
"""

    def test_swaps_and_preserves(self):
        baseline_interp = Interpreter(compile_source(self.SOURCE))
        baseline = baseline_interp.run()
        module = compile_source(self.SOURCE)
        stats = TimeSqueezer(Noelle(module)).run()
        assert stats.compares_swapped >= 1
        interp = Interpreter(module)
        result = interp.run()
        assert result.trapped is None
        assert result.return_value == baseline.return_value

    def test_clock_changes_reduce_weighted_time(self):
        source = """
int a[400];
int b[400];
int main() {
  int i;
  for (i = 0; i < 400; i = i + 1) { a[i] = i; }
  for (i = 0; i < 400; i = i + 1) { b[i] = a[i] + i - 3; }
  return b[100];
}
"""
        slow = Interpreter(compile_source(source))
        slow_result = slow.run()
        module = compile_source(source)
        stats = TimeSqueezer(Noelle(module)).run()
        fast = Interpreter(module)
        fast_result = fast.run()
        assert fast_result.return_value == slow_result.return_value
        if stats.clock_changes_inserted:
            assert fast.weighted_cycles < slow.weighted_cycles


class TestPerspective:
    MAY_ALIAS_LOOP = """
int data[400];
int out[400];
void kernel(int *src, int *dst, int offset, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    dst[i + offset] = src[i] * 2 + dst[i + offset] % 3;
  }
}
int main() {
  int i;
  for (i = 0; i < 400; i = i + 1) { data[i] = i % 29; }
  kernel(data, out, 0, 400);
  print_int(out[111]);
  return out[111];
}
"""

    def test_speculative_doall(self):
        baseline = run(compile_source(self.MAY_ALIAS_LOOP))
        module = compile_source(self.MAY_ALIAS_LOOP)
        noelle = Noelle(module)
        noelle.run_profiler()
        pers = Perspective(noelle)
        count = pers.run()
        machine = ParallelMachine(module, num_cores=8)
        result = machine.run()
        assert result.trapped is None
        assert outputs_match(result.output, baseline.output)
        if count:
            assert result.guard_count > 0  # validation ran

    def test_must_dependences_not_speculated(self):
        source = """
int cell = 0;
int main() {
  int i;
  for (i = 0; i < 50; i = i + 1) { cell = (cell * 2 + i) % 97; }
  return cell;
}
"""
        module = compile_source(source)
        noelle = Noelle(module)
        noelle.run_profiler()
        pers = Perspective(noelle)
        loops = [l for l in noelle.loops() if l.structure.depth() == 1]
        assert all(not pers.can_parallelize(l) for l in loops)
