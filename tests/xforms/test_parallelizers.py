"""DOALL / HELIX / DSWP correctness and behavior tests."""

import pytest

from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.tools import remove_loop_carried_dependences
from repro.xforms import DOALL, DSWP, HELIX
from tests.conftest import outputs_match


def run_sequential(source):
    module = compile_source(source)
    result = Interpreter(module).run()
    assert result.trapped is None
    return result


def parallelize(source, technique, **kwargs):
    module = compile_source(source)
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    remove_loop_carried_dependences(noelle)
    if technique == "doall":
        count = DOALL(noelle, kwargs.get("cores", 8)).run()
    elif technique == "helix":
        count = HELIX(noelle, kwargs.get("cores", 8)).run()
    else:
        count = DSWP(noelle, num_stages=kwargs.get("stages", 3)).run()
    return module, count


def check_equivalent(source, technique, cores=8, expect_parallelized=True):
    baseline = run_sequential(source)
    module, count = parallelize(source, technique, cores=cores)
    if expect_parallelized:
        assert count >= 1, f"{technique} parallelized nothing"
    machine = ParallelMachine(module, num_cores=cores)
    result = machine.run()
    assert result.trapped is None, result.trapped
    assert outputs_match(result.output, baseline.output, rel=1e-6)
    return baseline, result, machine


ARRAY_FILL = """
int a[800];
int main() {
  int i;
  for (i = 0; i < 800; i = i + 1) { a[i] = (i * 17 + 3) % 101; }
  print_int(a[700]);
  return a[700];
}
"""

SUM_REDUCTION = """
int a[600];
int main() {
  int i; int s = 0;
  for (i = 0; i < 600; i = i + 1) { a[i] = i % 23; }
  for (i = 0; i < 600; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return s;
}
"""

FLOAT_REDUCTION = """
double main() {
  int i;
  double acc = 0.0;
  for (i = 0; i < 400; i = i + 1) {
    acc = acc + sqrt((double)i + 0.5);
  }
  print_float(acc);
  return acc;
}
"""

HISTOGRAM = """
int hist[32];
int main() {
  int i;
  int checksum = 0;
  for (i = 0; i < 900; i = i + 1) {
    int bucket = (i * 7 + 3) % 32;
    int work = (i * i + bucket) % 97;
    hist[bucket] = hist[bucket] + 1;
    checksum = checksum + work;
  }
  print_int(checksum);
  print_int(hist[3]);
  return checksum;
}
"""

PIPELINE_FRIENDLY = """
int main() {
  int i; int s = 0;
  for (i = 0; i < 700; i = i + 1) {
    int a = (i * 13 + 5) % 101;
    int b = (a * a + 7) % 97;
    int c = (b * 31 + a) % 89;
    s = s + c;
  }
  print_int(s);
  return s;
}
"""

SEQUENTIAL_RECURRENCE = """
int a[200];
int main() {
  int i;
  a[0] = 1;
  for (i = 1; i < 200; i = i + 1) { a[i] = (a[i - 1] * 3 + i) % 1000; }
  print_int(a[199]);
  return a[199];
}
"""


class TestDOALL:
    def test_array_fill(self):
        check_equivalent(ARRAY_FILL, "doall")

    def test_sum_reduction(self):
        check_equivalent(SUM_REDUCTION, "doall")

    def test_float_reduction(self):
        check_equivalent(FLOAT_REDUCTION, "doall")

    def test_speedup_scales_with_cores(self):
        baseline = run_sequential(ARRAY_FILL)
        module, _ = parallelize(ARRAY_FILL, "doall")
        cycles = {}
        for cores in (1, 4, 12):
            machine = ParallelMachine(module, num_cores=cores)
            result = machine.run()
            cycles[cores] = result.cycles
        assert cycles[4] < cycles[1]
        assert cycles[12] < cycles[4]
        assert baseline.cycles / cycles[12] > 3.0

    def test_rejects_recurrence(self):
        module, count = parallelize(SEQUENTIAL_RECURRENCE, "doall")
        # The recurrence loop must stay sequential (the fill loop of a[0]
        # is straight-line, so nothing parallelizable remains).
        result = ParallelMachine(module, num_cores=8).run()
        baseline = run_sequential(SEQUENTIAL_RECURRENCE)
        assert outputs_match(result.output, baseline.output)

    def test_histogram_rejected_by_doall(self):
        # The histogram update is a may-carried memory dependence.
        module = compile_source(HISTOGRAM)
        noelle = Noelle(module)
        doall = DOALL(noelle)
        hot = [l for l in noelle.loops() if l.structure.depth() == 1]
        histogram_loops = [l for l in hot if not doall.can_parallelize(l)]
        assert histogram_loops


class TestHELIX:
    def test_histogram_parallelized(self):
        baseline, result, machine = check_equivalent(HISTOGRAM, "helix")
        helix_runs = [e for e in machine.executions if e.kind == "helix"]
        assert helix_runs

    def test_pure_doall_loop_also_works(self):
        check_equivalent(ARRAY_FILL, "helix")

    def test_reduction_loop(self):
        check_equivalent(SUM_REDUCTION, "helix")

    def test_sequential_segments_bound_speedup(self):
        # A loop that is *entirely* one sequential chain cannot speed up.
        baseline = run_sequential(SEQUENTIAL_RECURRENCE)
        module, _ = parallelize(SEQUENTIAL_RECURRENCE, "helix")
        result = ParallelMachine(module, num_cores=12).run()
        assert outputs_match(result.output, baseline.output)
        assert result.cycles > baseline.cycles * 0.8  # no miracle


class TestDSWP:
    def test_pipeline_loop(self):
        check_equivalent(PIPELINE_FRIENDLY, "dswp")

    def test_stage_count_respected(self):
        module = compile_source(PIPELINE_FRIENDLY)
        noelle = Noelle(module)
        noelle.attach_profile(Profiler(module).profile())
        dswp = DSWP(noelle, num_stages=3)
        count = dswp.run()
        assert count == 1
        stage_fns = [
            name for name in module.functions if ".dswp.stage" in name
        ]
        assert 2 <= len(stage_fns) <= 3

    def test_reduction_in_last_stage(self):
        check_equivalent(SUM_REDUCTION, "dswp", expect_parallelized=False)


class TestCombined:
    @pytest.mark.parametrize("technique", ["doall", "helix", "dswp"])
    def test_every_technique_preserves_all_programs(self, technique):
        for source in (ARRAY_FILL, SUM_REDUCTION, HISTOGRAM, PIPELINE_FRIENDLY,
                       SEQUENTIAL_RECURRENCE):
            baseline = run_sequential(source)
            module, _ = parallelize(source, technique)
            result = ParallelMachine(module, num_cores=6).run()
            assert result.trapped is None
            assert outputs_match(result.output, baseline.output, rel=1e-6), (
                f"{technique} broke outputs"
            )


class TestDSWPNativeTerritory:
    """DSWP's motivating case: chained sequential SCCs that defeat DOALL
    entirely and serialize HELIX, but pipeline across stages."""

    CHAINED = """
int out[2200];
int main() {
  int i;
  int gen_state = 7;
  int mix_state = 3;
  for (i = 0; i < 2200; i = i + 1) {
    gen_state = (gen_state * 1103515245 + 12345) % 2147483647;
    int token = (gen_state / 65536) % 32768;
    int a = (token * 13 + 7) % 97;
    int b = (a * a + token) % 89;
    mix_state = (mix_state * 31 + b) % 127;
    out[i] = mix_state;
  }
  print_int(out[2199]);
  return out[2199];
}
"""

    def test_doall_rejects_chained_recurrences(self):
        module, count = parallelize(self.CHAINED, "doall")
        assert count == 0

    def test_dswp_pipelines_and_wins(self):
        baseline = run_sequential(self.CHAINED)
        module, count = parallelize(self.CHAINED, "dswp")
        assert count == 1
        machine = ParallelMachine(module, num_cores=8)
        result = machine.run()
        assert result.trapped is None
        assert outputs_match(result.output, baseline.output)
        dswp_speedup = baseline.cycles / result.cycles

        helix_module, _ = parallelize(self.CHAINED, "helix")
        helix_result = ParallelMachine(helix_module, num_cores=8).run()
        assert outputs_match(helix_result.output, baseline.output)
        helix_speedup = baseline.cycles / helix_result.cycles

        # The pipeline beats both the sequential baseline and HELIX here.
        assert dswp_speedup > 1.3
        assert dswp_speedup > helix_speedup
